open Cmd

type result = Hit of int64 | Fault

type config = {
  itlb_entries : int;
  itlb_misses : int;
  dtlb_entries : int;
  dtlb_misses : int;
  l2_sets : int;
  l2_ways : int;
  l2_misses : int;
  walk_cache_entries : int option;
}

let blocking_config =
  {
    itlb_entries = 32;
    itlb_misses = 1;
    dtlb_entries = 32;
    dtlb_misses = 1;
    l2_sets = 512;
    l2_ways = 4;
    l2_misses = 1;
    walk_cache_entries = None;
  }

let nonblocking_config =
  { blocking_config with dtlb_misses = 4; itlb_misses = 2; l2_misses = 2; walk_cache_entries = Some 24 }

type l1_entry = { mutable valid : bool; mutable vpn : int64; mutable ppn : int64 }
type l2_entry = { mutable lvalid : bool; mutable lvpn : int64; mutable lppn : int64 }

type l1_miss = {
  mutable mvalid : bool;
  mutable mvpn : int64;
  mutable waiters : (int * int64) list; (* tag, full va *)
}

(* A walk in progress = an L2 TLB miss slot. *)
type walk = {
  mutable wvalid : bool;
  mutable wvpn : int64;
  mutable wva : int64;
  mutable level : int; (* level of the table [base] addresses *)
  mutable base : int64;
  mutable outstanding : bool; (* memory read in flight *)
  mutable result : result option; (* completed, to be published *)
}

type side = {
  entries : l1_entry array;
  misses : l1_miss array;
  req_q : (int * int64) Fifo.t;
  resp_q : (int * result) Fifo.t;
  mutable rotor : int;
  c_access : Stats.counter;
  c_miss : Stats.counter;
}

type t = {
  name : string;
  cfg : config;
  mutable satp_v : int64;
  i : side;
  d : side;
  l2 : l2_entry array array;
  mutable l2_rotor : int;
  walks : walk array;
  wcache : Walk_cache.t option;
  wreq : (int * int64) Fifo.t;
  wresp : (int * int64) Fifo.t;
  part : int; (* partition this TLB was built in (its core's) *)
  c_l2_access : Stats.counter;
  c_l2_miss : Stats.counter;
  c_walk_cycles : Stats.counter;
}

let mk_side clk name n misses stats =
  {
    entries = Array.init n (fun _ -> { valid = false; vpn = 0L; ppn = 0L });
    misses = Array.init misses (fun _ -> { mvalid = false; mvpn = 0L; waiters = [] });
    req_q = Fifo.cf ~name:(name ^ ".req") clk ~capacity:4 ();
    resp_q = Fifo.cf ~name:(name ^ ".resp") clk ~capacity:8 ();
    rotor = 0;
    c_access = Stats.counter stats (name ^ ".accesses");
    c_miss = Stats.counter stats (name ^ ".misses");
  }

let create ?(name = "tlb") ?walk_lookahead clk cfg ~stats () =
  let t =
  {
    name;
    cfg;
    satp_v = 0L;
    i = mk_side clk (name ^ ".i") cfg.itlb_entries cfg.itlb_misses stats;
    d = mk_side clk (name ^ ".d") cfg.dtlb_entries cfg.dtlb_misses stats;
    l2 = Array.init cfg.l2_sets (fun _ -> Array.init cfg.l2_ways (fun _ -> { lvalid = false; lvpn = 0L; lppn = 0L }));
    l2_rotor = 0;
    walks =
      Array.init cfg.l2_misses (fun _ ->
          { wvalid = false; wvpn = 0L; wva = 0L; level = 2; base = 0L; outstanding = false; result = None });
    wcache = Option.map (fun n -> Walk_cache.create ~entries_per_level:n) cfg.walk_cache_entries;
    (* The walk queues straddle the core/uncore boundary (walker crossbar
       on the far side); [walk_lookahead] declares their epoch lookahead. *)
    wreq = Fifo.cf ~name:(name ^ ".wreq") ?lookahead:walk_lookahead clk ~capacity:4 ();
    wresp = Fifo.cf ~name:(name ^ ".wresp") ?lookahead:walk_lookahead clk ~capacity:4 ();
    part = Partition.ambient ();
    c_l2_access = Stats.counter stats (name ^ ".l2.accesses");
    c_l2_miss = Stats.counter stats (name ^ ".l2.misses");
    c_walk_cycles = Stats.counter stats (name ^ ".walkCycles");
  }
  in
  (* cycles with at least one page walk in flight, sampled at the clock
     edge (main domain, post-barrier: untracked increments are safe) *)
  Clock.on_cycle_end clk (fun () ->
      if Array.exists (fun w -> w.wvalid) t.walks then Stats.incr t.c_walk_cycles);
  let side_save s = (s.entries, s.misses, s.rotor) in
  let side_load s (entries, misses, rotor) =
    Array.blit entries 0 s.entries 0 (Array.length s.entries);
    Array.blit misses 0 s.misses 0 (Array.length s.misses);
    s.rotor <- rotor
  in
  State.field ~name:(name ^ ".arrays")
    (fun () -> (t.satp_v, side_save t.i, side_save t.d, t.l2, t.l2_rotor, t.walks))
    (fun (satp_v, si, sd, l2, l2_rotor, walks) ->
      t.satp_v <- satp_v;
      side_load t.i si;
      side_load t.d sd;
      Array.iteri (fun s ways -> Array.blit ways 0 t.l2.(s) 0 (Array.length ways)) l2;
      t.l2_rotor <- l2_rotor;
      Array.blit walks 0 t.walks 0 (Array.length t.walks));
  t

let set_satp t v = t.satp_v <- v
let satp t = t.satp_v

let fld (ctx : Kernel.ctx) get set v = Mut.field ctx ~get ~set v
let vpn_of va = Int64.shift_right_logical va 12
let pa_of ppn va = Int64.logor (Int64.shift_left ppn 12) (Int64.logand va 0xFFFL)

let l1_lookup side vpn =
  Array.fold_left (fun acc e -> if e.valid && e.vpn = vpn then Some e.ppn else acc) None side.entries

let l1_fill ctx side vpn ppn =
  if l1_lookup side vpn = None then begin
    let e = side.entries.(side.rotor mod Array.length side.entries) in
    fld ctx (fun () -> side.rotor) (fun v -> side.rotor <- v) (side.rotor + 1);
    fld ctx (fun () -> e.valid) (fun v -> e.valid <- v) true;
    fld ctx (fun () -> e.vpn) (fun v -> e.vpn <- v) vpn;
    fld ctx (fun () -> e.ppn) (fun v -> e.ppn <- v) ppn
  end

let l2_lookup t vpn =
  let set = t.l2.(Int64.to_int vpn land (t.cfg.l2_sets - 1)) in
  Array.fold_left (fun acc e -> if e.lvalid && e.lvpn = vpn then Some e.lppn else acc) None set

let l2_fill ctx t vpn ppn =
  if l2_lookup t vpn = None then begin
    let set = t.l2.(Int64.to_int vpn land (t.cfg.l2_sets - 1)) in
    let e = set.(t.l2_rotor mod Array.length set) in
    fld ctx (fun () -> t.l2_rotor) (fun v -> t.l2_rotor <- v) (t.l2_rotor + 1);
    fld ctx (fun () -> e.lvalid) (fun v -> e.lvalid <- v) true;
    fld ctx (fun () -> e.lvpn) (fun v -> e.lvpn <- v) vpn;
    fld ctx (fun () -> e.lppn) (fun v -> e.lppn <- v) ppn
  end

(* --- steps --------------------------------------------------------------- *)

(* Consume one L1 request: hit -> respond; miss -> merge into or allocate a
   miss slot (stall if none free: this is what makes the blocking config
   block). *)
let step_l1_req ctx t side =
  (* blocking configuration (one miss slot): no hit-under-miss — any
     outstanding miss blocks the whole TLB, as in RiscyOO-B *)
  Kernel.guard ctx
    (Array.length side.misses > 1 || not side.misses.(0).mvalid)
    "blocking tlb: miss outstanding";
  let tag, va = Fifo.first ctx side.req_q in
  Stats.incr ~ctx side.c_access;
  if t.satp_v = 0L then Fifo.enq ctx side.resp_q (tag, Hit va)
  else begin
    let vpn = vpn_of va in
    match l1_lookup side vpn with
    | Some ppn -> Fifo.enq ctx side.resp_q (tag, Hit (pa_of ppn va))
    | None -> (
      Stats.incr ~ctx side.c_miss;
      let existing = Array.fold_left (fun a m -> if m.mvalid && m.mvpn = vpn then Some m else a) None side.misses in
      match existing with
      | Some m -> fld ctx (fun () -> m.waiters) (fun v -> m.waiters <- v) (m.waiters @ [ (tag, va) ])
      | None -> (
        let free = Array.fold_left (fun a m -> if m.mvalid then a else Some m) None side.misses in
        match free with
        | None -> raise (Kernel.Guard_fail "l1 tlb miss slots full")
        | Some m ->
          fld ctx (fun () -> m.mvalid) (fun v -> m.mvalid <- v) true;
          fld ctx (fun () -> m.mvpn) (fun v -> m.mvpn <- v) vpn;
          fld ctx (fun () -> m.waiters) (fun v -> m.waiters <- v) [ (tag, va) ]))
  end;
  ignore (Fifo.deq ctx side.req_q)

(* Try to satisfy one L1 miss slot from the L2 TLB, or ensure a walk is in
   flight. Responding needs resp_q space for every waiter. *)
let step_l1_miss ctx t side m =
  Kernel.guard ctx m.mvalid "idle miss slot";
  match l2_lookup t m.mvpn with
  | Some ppn ->
    l1_fill ctx side m.mvpn ppn;
    List.iter (fun (tag, va) -> Fifo.enq ctx side.resp_q (tag, Hit (pa_of ppn va))) m.waiters;
    fld ctx (fun () -> m.mvalid) (fun v -> m.mvalid <- v) false
  | None ->
    (* check whether a walk finished with a fault for this vpn *)
    let faulted =
      Array.exists (fun w -> w.wvalid && w.wvpn = m.mvpn && w.result = Some Fault) t.walks
    in
    if faulted then begin
      List.iter (fun (tag, _) -> Fifo.enq ctx side.resp_q (tag, Fault)) m.waiters;
      fld ctx (fun () -> m.mvalid) (fun v -> m.mvalid <- v) false
    end
    else begin
      let walking = Array.exists (fun w -> w.wvalid && w.wvpn = m.mvpn) t.walks in
      if not walking then begin
        let free = Array.fold_left (fun a w -> if w.wvalid then a else Some w) None t.walks in
        match free with
        | None -> raise (Kernel.Guard_fail "no walk slot")
        | Some w ->
          Stats.incr ~ctx t.c_l2_access;
          Stats.incr ~ctx t.c_l2_miss;
          let va = Int64.shift_left m.mvpn 12 in
          let level, base =
            match t.wcache with
            | Some wc -> Walk_cache.lookup wc ~root:t.satp_v va
            | None -> (2, t.satp_v)
          in
          fld ctx (fun () -> w.wvalid) (fun v -> w.wvalid <- v) true;
          fld ctx (fun () -> w.wvpn) (fun v -> w.wvpn <- v) m.mvpn;
          fld ctx (fun () -> w.wva) (fun v -> w.wva <- v) va;
          fld ctx (fun () -> w.level) (fun v -> w.level <- v) level;
          fld ctx (fun () -> w.base) (fun v -> w.base <- v) base;
          fld ctx (fun () -> w.outstanding) (fun v -> w.outstanding <- v) false;
          fld ctx (fun () -> w.result) (fun v -> w.result <- v) None
      end
      else raise (Kernel.Guard_fail "walk pending")
    end

(* Issue the next PTE read of a walk. *)
let step_walk_issue ctx t idx (w : walk) =
  Kernel.guard ctx (w.wvalid && (not w.outstanding) && w.result = None) "no read to issue";
  let vpn_slice = Int64.logand (Int64.shift_right_logical w.wva (12 + (9 * w.level))) 0x1FFL in
  let pte_addr = Int64.add w.base (Int64.mul vpn_slice 8L) in
  Fifo.enq ctx t.wreq (idx, pte_addr);
  fld ctx (fun () -> w.outstanding) (fun v -> w.outstanding <- v) true

(* Consume one PTE read response and advance that walk. *)
let step_walk_resp ctx t =
  let idx, pte = Fifo.deq ctx t.wresp in
  let w = t.walks.(idx) in
  if not (w.wvalid && w.outstanding) then failwith (t.name ^ ": orphan walk response");
  fld ctx (fun () -> w.outstanding) (fun v -> w.outstanding <- v) false;
  let valid = Int64.logand pte 1L = 1L in
  let leaf = valid && Int64.logand pte 0xEL <> 0L in
  let ppn = Int64.shift_right_logical pte 10 in
  if not valid then fld ctx (fun () -> w.result) (fun v -> w.result <- v) (Some Fault)
  else if leaf then begin
    (* a leaf above level 0 is a superpage: the low VPN slices pass through,
       and the TLBs cache the derived 4 KB-granularity translation *)
    let low = Int64.logand w.wvpn (Int64.sub (Int64.shift_left 1L (9 * w.level)) 1L) in
    let ppn = Int64.add ppn low in
    fld ctx (fun () -> w.result) (fun v -> w.result <- v) (Some (Hit ppn));
    l2_fill ctx t w.wvpn ppn
  end
  else begin
    let next_base = Int64.shift_left ppn 12 in
    let next_level = w.level - 1 in
    if next_level < 0 then fld ctx (fun () -> w.result) (fun v -> w.result <- v) (Some Fault)
    else begin
      (match t.wcache with
      | Some wc -> Walk_cache.insert ctx wc w.wva ~level:next_level ~base:next_base
      | None -> ());
      fld ctx (fun () -> w.level) (fun v -> w.level <- v) next_level;
      fld ctx (fun () -> w.base) (fun v -> w.base <- v) next_base
    end
  end

(* Retire completed walks once no L1 miss slot still needs them. *)
let step_walk_retire ctx t (w : walk) =
  Kernel.guard ctx (w.wvalid && w.result <> None) "walk not done";
  let needed side = Array.exists (fun m -> m.mvalid && m.mvpn = w.wvpn) side.misses in
  Kernel.guard ctx (not (needed t.i || needed t.d)) "walk result still needed";
  fld ctx (fun () -> w.wvalid) (fun v -> w.wvalid <- v) false

let tick t =
  (* Walk slots and miss slots are mutated only by this rule's own sub-steps,
     so while parked they cannot change; any in-flight walk or miss keeps the
     predicate true. Parking therefore only happens fully drained, and the
     only wakeups are enqueues on the two request queues (core side) or the
     walk-memory response queue (crossbar side) — all watched. *)
  let can_fire () =
    Fifo.peek_size t.wresp > 0
    || Array.exists (fun w -> w.wvalid) t.walks
    || Array.exists (fun m -> m.mvalid) t.i.misses
    || Array.exists (fun m -> m.mvalid) t.d.misses
    || Fifo.peek_size t.i.req_q > 0
    || Fifo.peek_size t.d.req_q > 0
  in
  let watches = [ Fifo.signal t.wresp; Fifo.signal t.i.req_q; Fifo.signal t.d.req_q ] in
  (* Declared boundary: the walk-memory queues shared with the walk
     crossbar (this TLB enqs requests, deqs responses). The core-side
     req/resp queues stay inside the core's partition. *)
  let touches = [ Fifo.enq_token t.wreq; Fifo.deq_token t.wresp ] in
  (* Tracked footprint: both L1-side queue pairs and the walk-memory pair.
     TLB arrays, miss slots, walk slots and the walk cache are raw [Mut]
     state private to this rule. *)
  let fp =
    [
      Fifo.fp_first t.i.req_q;
      Fifo.fp_deq t.i.req_q;
      Fifo.fp_enq t.i.resp_q;
      Fifo.fp_first t.d.req_q;
      Fifo.fp_deq t.d.req_q;
      Fifo.fp_enq t.d.resp_q;
      Fifo.fp_enq t.wreq;
      Fifo.fp_deq t.wresp;
    ]
  in
  Rule.make ~can_fire ~watches ~touches ~fp ~vacuous:true (t.name ^ ".tick") (fun ctx ->
      let _ = Kernel.attempt ctx (fun ctx -> step_walk_resp ctx t) in
      Array.iteri (fun i w -> ignore (Kernel.attempt ctx (fun ctx -> step_walk_issue ctx t i w))) t.walks;
      List.iter
        (fun side ->
          Array.iter
            (fun m -> ignore (Kernel.attempt ctx (fun ctx -> step_l1_miss ctx t side m)))
            side.misses;
          ignore (Kernel.attempt ctx (fun ctx -> step_l1_req ctx t side)))
        [ t.d; t.i ];
      Array.iter (fun w -> ignore (Kernel.attempt ctx (fun ctx -> step_walk_retire ctx t w))) t.walks)

let rules t = Partition.scoped t.part (fun () -> [ tick t ])

let itlb_req ctx t ~tag va = Fifo.enq ctx t.i.req_q (tag, va)
let can_itlb_req ctx t = Fifo.can_enq ctx t.i.req_q
let itlb_resp ctx t = Fifo.deq ctx t.i.resp_q
let can_itlb_resp ctx t = Fifo.can_deq ctx t.i.resp_q
let dtlb_req ctx t ~tag va = Fifo.enq ctx t.d.req_q (tag, va)
let can_dtlb_req ctx t = Fifo.can_enq ctx t.d.req_q
let dtlb_resp ctx t = Fifo.deq ctx t.d.resp_q
let can_dtlb_resp ctx t = Fifo.can_deq ctx t.d.resp_q
let fp_itlb_req t = [ Fifo.fp_can_enq t.i.req_q; Fifo.fp_enq t.i.req_q ]
let fp_itlb_resp t = [ Fifo.fp_can_deq t.i.resp_q; Fifo.fp_deq t.i.resp_q ]
let fp_dtlb_req t = [ Fifo.fp_can_enq t.d.req_q; Fifo.fp_enq t.d.req_q ]
let fp_dtlb_resp t = [ Fifo.fp_can_deq t.d.resp_q; Fifo.fp_deq t.d.resp_q ]
let walk_mem_req t = t.wreq
let walk_mem_resp t = t.wresp
let itlb_resp_ready t = Fifo.peek_size t.i.resp_q > 0
let dtlb_resp_ready t = Fifo.peek_size t.d.resp_q > 0
let itlb_resp_signal t = Fifo.signal t.i.resp_q
let dtlb_resp_signal t = Fifo.signal t.d.resp_q

(* debug *)
let pp_debug fmt t =
  Format.fprintf fmt "satp=%Lx@." t.satp_v;
  Array.iteri
    (fun i w ->
      Format.fprintf fmt "walk%d: valid=%b vpn=%Lx level=%d base=%Lx out=%b result=%s@." i w.wvalid
        w.wvpn w.level w.base w.outstanding
        (match w.result with None -> "-" | Some Fault -> "F" | Some (Hit p) -> Printf.sprintf "H%Lx" p))
    t.walks;
  List.iter
    (fun (nm, side) ->
      Array.iteri
        (fun i m ->
          Format.fprintf fmt "%s miss%d: valid=%b vpn=%Lx waiters=%d@." nm i m.mvalid m.mvpn
            (List.length m.waiters))
        side.misses;
      Format.fprintf fmt "%s reqq=%d respq=%d@." nm (Cmd.Fifo.peek_size side.req_q)
        (Cmd.Fifo.peek_size side.resp_q))
    [ ("i", t.i); ("d", t.d) ];
  Format.fprintf fmt "wreq=%d wresp=%d@." (Cmd.Fifo.peek_size t.wreq) (Cmd.Fifo.peek_size t.wresp)
