(** Per-core address-translation system: L1 I/D TLBs, a unified per-core L2
    TLB, the hardware page walker, and (optionally) the split translation
    walk cache.

    Two personalities, selected by {!config} (paper, Section VI-A):
    - {!blocking_config} (RiscyOO-B): both TLB levels block on a miss — one
      outstanding miss in each L1 TLB and in the L2 TLB;
    - {!nonblocking_config} (RiscyOO-T+): parallel miss handling and
      hit-under-miss (4 D-TLB misses, 2 L2-TLB misses) plus a 24-entry/level
      translation cache.

    Page walks read real Sv39 tables through the L2 {e cache}'s coherent
    walker port (paper, Fig. 11), so TLB miss penalties include genuine
    cache/DRAM latencies. *)

type result = Hit of int64  (** full translated physical address *) | Fault

type config = {
  itlb_entries : int;
  itlb_misses : int;
  dtlb_entries : int;
  dtlb_misses : int;
  l2_sets : int;
  l2_ways : int;
  l2_misses : int;  (** also the number of concurrent page walks *)
  walk_cache_entries : int option;
}

val blocking_config : config
val nonblocking_config : config

type t

(** [?walk_lookahead] declares the epoch lookahead ({!Cmd.Fifo.cf}) on the
    page-walk request/response queues, which straddle the core/uncore
    partition boundary. *)
val create : ?name:string -> ?walk_lookahead:int -> Cmd.Clock.t -> config -> stats:Cmd.Stats.t -> unit -> t

(** Root page-table base; 0 = bare mode (identity translation). *)
val set_satp : t -> int64 -> unit

val satp : t -> int64

(** {2 L1 TLB interfaces (guarded FIFO pairs)} *)

val itlb_req : Cmd.Kernel.ctx -> t -> tag:int -> int64 -> unit
val can_itlb_req : Cmd.Kernel.ctx -> t -> bool
val itlb_resp : Cmd.Kernel.ctx -> t -> int * result
val can_itlb_resp : Cmd.Kernel.ctx -> t -> bool
val dtlb_req : Cmd.Kernel.ctx -> t -> tag:int -> int64 -> unit
val can_dtlb_req : Cmd.Kernel.ctx -> t -> bool
val dtlb_resp : Cmd.Kernel.ctx -> t -> int * result
val can_dtlb_resp : Cmd.Kernel.ctx -> t -> bool

(** Footprint atoms ([Rule.make ~fp]); each list covers the method and its
    [can_*] probe. *)
val fp_itlb_req : t -> Cmd.Conflict.atom list

val fp_itlb_resp : t -> Cmd.Conflict.atom list
val fp_dtlb_req : t -> Cmd.Conflict.atom list
val fp_dtlb_resp : t -> Cmd.Conflict.atom list

(** {2 Fast-path scheduler probes}

    Untracked response availability ([peek_size > 0]) and the matching
    wakeup signals, for the [can_fire] of core rules that dequeue TLB
    responses. *)

val itlb_resp_ready : t -> bool

val dtlb_resp_ready : t -> bool
val itlb_resp_signal : t -> Cmd.Wakeup.signal
val dtlb_resp_signal : t -> Cmd.Wakeup.signal

(** {2 Walker memory port} — to be connected to {!Mem.L2_cache} through the
    page-walk crossbar. Requests carry an opaque walk tag. *)

val walk_mem_req : t -> (int * int64) Cmd.Fifo.t

val walk_mem_resp : t -> (int * int64) Cmd.Fifo.t

val rules : t -> Cmd.Rule.t list

(** Dump internal walker/miss-slot state (debugging aid). *)
val pp_debug : Format.formatter -> t -> unit
