(* Minimal JSON, hand-rolled: the container carries no JSON library and the
   farm needs both directions — manifests and journals are parsed back, and
   canonical results must serialize byte-identically across runs (resume
   equivalence is checked with [diff]). The printer is therefore strictly
   deterministic: object fields print in construction order, floats via
   %.17g only when not representable as an int, no whitespace options. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------------------------------- printing --------------------------- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.1f" f)
    else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Str s -> escape b s
  | List l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string b ", ";
        emit b v)
      l;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        escape b k;
        Buffer.add_string b ": ";
        emit b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

(* ---------------------------------- parsing ---------------------------- *)

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    st.pos <- st.pos + 1;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st ("expected " ^ word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then fail st "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents b
    | '\\' -> (
      if st.pos >= String.length st.src then fail st "unterminated escape";
      let e = st.src.[st.pos] in
      st.pos <- st.pos + 1;
      match e with
      | '"' | '\\' | '/' ->
        Buffer.add_char b e;
        go ()
      | 'n' ->
        Buffer.add_char b '\n';
        go ()
      | 't' ->
        Buffer.add_char b '\t';
        go ()
      | 'r' ->
        Buffer.add_char b '\r';
        go ()
      | 'b' ->
        Buffer.add_char b '\b';
        go ()
      | 'f' ->
        Buffer.add_char b '\012';
        go ()
      | 'u' ->
        if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
        let hex = String.sub st.src st.pos 4 in
        st.pos <- st.pos + 4;
        let code = try int_of_string ("0x" ^ hex) with _ -> fail st "bad \\u escape" in
        (* non-ASCII escapes round-trip as UTF-8 *)
        if code < 0x80 then Buffer.add_char b (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end;
        go ()
      | _ -> fail st "bad escape")
    | c ->
      Buffer.add_char b c;
      go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  while (match peek st with Some c when is_num c -> true | _ -> false) do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with Some f -> Float f | None -> fail st ("bad number " ^ s))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (k, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          members ()
        | Some '}' -> st.pos <- st.pos + 1
        | _ -> fail st "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          elements ()
        | Some ']' -> st.pos <- st.pos + 1
        | _ -> fail st "expected ',' or ']'"
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st
  | None -> fail st "unexpected end of input"

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing junk";
  v

(* ---------------------------------- accessors -------------------------- *)

let mem k = function Obj fields -> List.assoc_opt k fields | _ -> None

let str = function Str s -> Some s | _ -> None
let int = function Int i -> Some i | _ -> None
let bool = function Bool b -> Some b | _ -> None
let list = function List l -> Some l | _ -> None

let get_str k j = Option.bind (mem k j) str
let get_int k j = Option.bind (mem k j) int
let get_bool k j = Option.bind (mem k j) bool
let get_list k j = Option.bind (mem k j) list

let float_of = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None
