(** Minimal hand-rolled JSON (the container carries no JSON library).

    The printer is canonical — object fields in construction order, fixed
    number formatting, fixed separators — so equal values serialize to
    byte-identical strings. The farm's resume-equivalence guarantee (a
    resumed sweep's results file diffs clean against an uninterrupted one)
    rests on this. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string

(** Raises {!Parse_error} on malformed input. *)
val of_string : string -> t

(** Field of an object, [None] on absent field or non-object. *)
val mem : string -> t -> t option

val str : t -> string option
val int : t -> int option
val bool : t -> bool option
val list : t -> t list option
val float_of : t -> float option

val get_str : string -> t -> string option
val get_int : string -> t -> int option
val get_bool : string -> t -> bool option
val get_list : string -> t -> t list option
