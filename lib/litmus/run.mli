(** Sweep driver: run a test across shuffled schedules and job counts,
    accumulate outcome histograms, and flag forbidden outcomes.

    Every (seed, jobs) pair is deterministic: the machine runs in
    [Sim.Shuffle seed] mode on a seed-staggered image, so a forbidden run
    can be replayed exactly — which is how {!sweep} attaches a Konata
    pipeline trace to the first forbidden outcome it sees. *)

(** How an observed outcome relates to the three reference sets (which
    nest: SC ⊆ TSO ⊆ WMM). [Forbidden] means outside even the WMM set. *)
type cls = In_sc | Tso_relaxed | Wmm_relaxed | Forbidden

val cls_to_string : cls -> string

type run_error =
  | Timed_out of int  (** cycles spent *)
  | Bad_exit of string  (** a hart exited with the wrong code *)
  | Not_quiesced  (** store queues/buffers still held data after exit *)
  | Obligation_violated of string * string * string
      (** module, interface, evidence — an armed {!Mcheck.Obligation}
          monitor fired during the run *)

exception Harness_error of run_error

val error_to_string : run_error -> string

(** Which implementation the sweep drives. [Dut_inorder] runs the litmus
    program on the in-order baseline core and bounds its outcomes by the SC
    set — the tightest meaningful check for a core with no store buffer. *)
type dut = Dut_ooo | Dut_inorder

val dut_to_string : dut -> string

(** One deterministic run; returns the outcome vector. [konata] dumps the
    run's pipeline trace to the given file (used when replaying a failure).
    [on_cycle] is threaded to the machine's cycle hook (the farm's
    cancellation poll). [warm] re-uses a per-domain cached machine by
    restoring its cycle-0 snapshot and reseeding the schedule instead of
    rebuilding — valid only with [stagger:false] (seed-independent images)
    and no tracer; other runs silently take the cold path. [mesi] switches
    the cache hierarchy to the MESI protocol; [obligations] arms the
    per-interface contract monitors (a violation surfaces as
    {!Harness_error}[ (Obligation_violated _)]); [inject_lsq_bug] enables
    the seeded load-issue ordering bug the obligation layer is tested
    against. [on_machine] receives the machine after a successful run (how
    the sweep collects obligation event counts). Raises {!Harness_error} on
    timeout or a harness self-check failure. *)
val run_one :
  ?jobs:int ->
  ?seed:int ->
  ?stagger:bool ->
  ?konata:string ->
  ?on_cycle:(int -> unit) ->
  ?warm:bool ->
  ?dut:dut ->
  ?mesi:bool ->
  ?obligations:bool ->
  ?inject_lsq_bug:bool ->
  ?on_machine:(Workloads.Machine.t -> unit) ->
  model:Ooo.Config.mem_model ->
  Test.t ->
  int array

type report = {
  test : Test.t;
  dut : dut;
  model : Ooo.Config.mem_model;
  total_runs : int;
  hist : (int array * cls * int) list;  (** outcome, class, count; count desc *)
  forbidden : (int array * int * int * string option) list;
      (** outcome, seed, jobs, trace file (first occurrence per outcome) *)
  mismatches : (int * int array * int array) list;
      (** seed, outcome at [jobs_list] head, differing outcome — the
          domain-parallel engine must be bit-identical, so any entry here is
          a simulator bug, not a memory-model bug *)
  errors : string list;
  relaxed_seen : bool;  (** some outcome outside the SC set was observed *)
  wmm_only_seen : bool;  (** some outcome outside the TSO set was observed *)
  enum : (Ref_model.model * Ref_model.enum_stats) list;
      (** DPOR search statistics for the SC/TSO/WMM reference enumerations
          this sweep checked against *)
  obligation_events : (string * int) list;
      (** per-monitor committed boundary events summed over the sweep's
          runs (empty unless [obligations]) *)
}

(** Whether the sweep found no forbidden outcomes, no jobs mismatches and no
    harness errors. *)
val ok : report -> bool

(** [sweep ~seeds ~jobs_list ~model test] — seeds run from 1 to [seeds];
    each seed runs once per entry of [jobs_list] (default [[1; 4]]).
    [trace_dir] enables Konata replay dumps for forbidden outcomes. *)
val sweep :
  ?seeds:int ->
  ?jobs_list:int list ->
  ?stagger:bool ->
  ?trace_dir:string ->
  ?dut:dut ->
  ?mesi:bool ->
  ?obligations:bool ->
  ?inject_lsq_bug:bool ->
  model:Ooo.Config.mem_model ->
  Test.t ->
  report

val pp_report : Format.formatter -> report -> unit

(** Machine-readable sweep summary (schema [riscyoo-litmus-v1]). *)
val reports_to_json : seeds:int -> report list -> string

(** {2 Farm job producers}

    One farm job = one deterministic (test, model, seed) run at [jobs:1];
    the farm layer schedules thousands of them across worker domains. *)

type farm_job = {
  fj_test : Test.t;
  fj_model : Ooo.Config.mem_model;
  fj_seed : int;
  fj_stagger : bool;
  fj_obligations : bool;  (** arm the interface-obligation monitors *)
}

(** Stable unique id encoding every job parameter (the resume key).
    Obligation-armed jobs use the [mcheck/] namespace. *)
val farm_job_id : farm_job -> string

(** The full (test × model × seed) product, seeds numbered from 1. *)
val farm_jobs :
  ?stagger:bool ->
  ?obligations:bool ->
  seeds:int ->
  models:Ooo.Config.mem_model list ->
  Test.t list ->
  farm_job list

(** Classify an outcome against the (cached) reference sets. *)
val classify_outcome : Test.t -> int array -> cls

(** Run one job: outcome vector, its class, whether the model under test
    admits it, and the per-monitor committed obligation-event counts
    (empty unless the job armed the monitors). [warm] uses the per-domain
    warm-fork machine cache. Raises {!Harness_error} on harness
    failures. *)
val farm_run :
  ?on_cycle:(int -> unit) ->
  ?warm:bool ->
  farm_job ->
  int array * cls * bool * (string * int) list
