type amo = Add | Swap | Xor

type op =
  | St of string * int
  | Ld of int * string
  | Fence
  | Amo of amo * int * string * int
  | Lr of int * string
  | Sc of int * string * int
  | Ld_dep of int * string * int
  | St_ctrl of string * int * int

type thread = { warm : op list; body : op list }

type t = {
  name : string;
  doc : string;
  init : (string * int) list;
  threads : thread array;
}

let amo_to_string = function Add -> "add" | Swap -> "swap" | Xor -> "xor"

let amo_apply k ~old ~src =
  match k with Add -> old + src | Swap -> src | Xor -> old lxor src

let nharts t = Array.length t.threads

let op_loc = function
  | St (l, _) | Ld (_, l) | Amo (_, _, l, _) | Lr (_, l) | Sc (_, l, _) | Ld_dep (_, l, _)
  | St_ctrl (l, _, _) ->
    Some l
  | Fence -> None

(* Destination register, if the op writes one. [Sc] writes its success flag
   (0 ok / 1 fail); [Amo] and [Lr] write the old memory value. *)
let op_dst = function
  | Ld (r, _) | Amo (_, r, _, _) | Lr (r, _) | Sc (r, _, _) | Ld_dep (r, _, _) -> Some r
  | St _ | Fence | St_ctrl _ -> None

let locs t =
  let s = Hashtbl.create 8 in
  let note l = Hashtbl.replace s l () in
  List.iter (fun (l, _) -> note l) t.init;
  Array.iter
    (fun th ->
      List.iter (fun o -> match op_loc o with Some l -> note l | None -> ()) (th.warm @ th.body))
    t.threads;
  List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) s [])

let init_value t l = match List.assoc_opt l t.init with Some v -> v | None -> 0

let observed t i =
  let s = Hashtbl.create 4 in
  List.iter
    (fun o -> match op_dst o with Some r -> Hashtbl.replace s r () | None -> ())
    t.threads.(i).body;
  List.sort compare (Hashtbl.fold (fun r () acc -> r :: acc) s [])

let check t =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let n = nharts t in
  if n < 1 || n > 4 then fail "litmus %s: %d threads (must be 1-4)" t.name n;
  if List.length (locs t) > 4 then fail "litmus %s: more than 4 locations" t.name;
  let reg r = if r < 0 || r > 3 then fail "litmus %s: register r%d out of range" t.name r in
  let value v = if v < 0 || v > 255 then fail "litmus %s: value %d out of range" t.name v in
  Array.iteri
    (fun i th ->
      if th.body = [] then fail "litmus %s: thread %d has an empty body" t.name i;
      (* a dependency source must be a register some earlier op in the same
         body wrote, else the "dependency" orders nothing *)
      let defined = Hashtbl.create 4 in
      List.iter
        (fun o ->
          (match o with
          | St (_, v) -> value v
          | Ld (r, _) -> reg r
          | Fence -> ()
          | Amo (_, r, _, v) | Sc (r, _, v) ->
            reg r;
            value v
          | Lr (r, _) -> reg r
          | Ld_dep (r, _, dep) ->
            reg r;
            reg dep;
            if not (Hashtbl.mem defined dep) then
              fail "litmus %s: thread %d addr-dep on r%d before any load into it" t.name i dep
          | St_ctrl (_, v, dep) ->
            value v;
            reg dep;
            if not (Hashtbl.mem defined dep) then
              fail "litmus %s: thread %d ctrl-dep on r%d before any load into it" t.name i dep);
          match op_dst o with Some r -> Hashtbl.replace defined r () | None -> ())
        th.body;
      List.iter
        (function
          | St (l, v) ->
            value v;
            if v <> init_value t l then
              fail "litmus %s: warm store to %s writes %d, not the initial value %d" t.name l v
                (init_value t l)
          | Ld (r, _) -> reg r
          | Fence -> ()
          | Amo _ | Lr _ | Sc _ | Ld_dep _ | St_ctrl _ ->
            fail "litmus %s: warm-up must stay architecturally neutral (St/Ld/Fence only)" t.name)
        th.warm)
    t.threads

let outcome_labels t =
  let regs =
    List.concat
      (List.init (nharts t) (fun i ->
           List.map (fun r -> Printf.sprintf "%d:r%d" i r) (observed t i)))
  in
  regs @ locs t

let outcome_to_string t (o : int array) =
  let labels = outcome_labels t in
  String.concat " " (List.mapi (fun i l -> Printf.sprintf "%s=%d" l o.(i)) labels)

(* ------------------------------------------------------------------ *)
(* The classic suite. Warm-ups steer coherence timing: a warm store puts
   the line in the writer's cache in M state (its drain is then fast), a
   warm load leaves a shared copy whose hit can bind a value before the
   remote invalidation lands — under WMM nothing replays it. *)
(* ------------------------------------------------------------------ *)

let thr ?(warm = []) body = { warm; body }

let sb =
  {
    name = "SB";
    doc = "store buffering: r0=0 on both sides is non-SC, allowed TSO/WMM";
    init = [];
    threads =
      [|
        thr ~warm:[ Ld (0, "y") ] [ St ("x", 1); Ld (0, "y") ];
        thr ~warm:[ Ld (0, "x") ] [ St ("y", 1); Ld (0, "x") ];
      |];
  }

let sb_fence =
  {
    name = "SB+fence";
    doc = "SB with fences: r0=0/r0=0 forbidden under every model";
    init = [];
    threads =
      [|
        thr [ St ("x", 1); Fence; Ld (0, "y") ];
        thr [ St ("y", 1); Fence; Ld (0, "x") ];
      |];
  }

let mp =
  {
    name = "MP";
    doc = "message passing: r0=1,r1=0 forbidden TSO, allowed WMM";
    init = [];
    threads =
      [|
        thr ~warm:[ St ("y", 0) ] [ St ("x", 1); St ("y", 1) ];
        thr ~warm:[ Ld (3, "x") ] [ Ld (0, "y"); Ld (1, "x") ];
      |];
  }

let mp_fence =
  {
    name = "MP+fence";
    doc = "MP with fences: r0=1,r1=0 forbidden under every model";
    init = [];
    threads =
      [|
        thr [ St ("x", 1); Fence; St ("y", 1) ];
        thr [ Ld (0, "y"); Fence; Ld (1, "x") ];
      |];
  }

let lb =
  {
    name = "LB";
    doc = "load buffering: r0=1 on both sides forbidden even under WMM";
    init = [];
    threads =
      [|
        thr [ Ld (0, "x"); St ("y", 1) ];
        thr [ Ld (0, "y"); St ("x", 1) ];
      |];
  }

let s =
  {
    name = "S";
    doc = "r0=1 with final x=2 needs W-W reordering: forbidden TSO, allowed WMM";
    init = [];
    threads =
      [|
        thr ~warm:[ St ("y", 0) ] [ St ("x", 2); St ("y", 1) ];
        thr ~warm:[ St ("x", 0) ] [ Ld (0, "y"); St ("x", 1) ];
      |];
  }

let r =
  {
    name = "R";
    doc = "write race vs store buffering: final y=2 with r0=0";
    init = [];
    threads =
      [|
        thr ~warm:[ St ("y", 0) ] [ St ("x", 1); St ("y", 1) ];
        thr ~warm:[ Ld (3, "x") ] [ St ("y", 2); Ld (0, "x") ];
      |];
  }

let w2plus2 =
  {
    name = "2+2W";
    doc = "2+2W: final x=1,y=1 needs both first writes last: forbidden TSO";
    init = [];
    threads =
      [|
        thr ~warm:[ St ("y", 0) ] [ St ("x", 1); St ("y", 2) ];
        thr ~warm:[ St ("x", 0) ] [ St ("y", 1); St ("x", 2) ];
      |];
  }

let corr =
  {
    name = "CoRR";
    doc = "read-read coherence: r0=1,r1=0 forbidden under every model";
    init = [];
    threads =
      [|
        thr [ St ("x", 1) ];
        thr ~warm:[ Ld (3, "x") ] [ Ld (0, "x"); Ld (1, "x") ];
      |];
  }

let coww =
  {
    name = "CoWW";
    doc = "write-write coherence: same-address stores drain in order, final x=2";
    init = [];
    threads = [| thr [ St ("x", 1); St ("x", 2) ] |];
  }

let iriw =
  {
    name = "IRIW";
    doc = "independent reads: opposite orders forbidden TSO, allowed WMM";
    init = [];
    threads =
      [|
        thr ~warm:[ St ("x", 0) ] [ St ("x", 1) ];
        thr ~warm:[ St ("y", 0) ] [ St ("y", 1) ];
        thr ~warm:[ Ld (3, "y") ] [ Ld (0, "x"); Ld (1, "y") ];
        thr ~warm:[ Ld (3, "x") ] [ Ld (0, "y"); Ld (1, "x") ];
      |];
  }

let iriw_fence =
  {
    name = "IRIW+fence";
    doc = "IRIW with fenced readers: forbidden under every model";
    init = [];
    threads =
      [|
        thr [ St ("x", 1) ];
        thr [ St ("y", 1) ];
        thr [ Ld (0, "x"); Fence; Ld (1, "y") ];
        thr [ Ld (0, "y"); Fence; Ld (1, "x") ];
      |];
  }

(* ------------------------------------------------------------------ *)
(* Atomics and dependency shapes. AMO/LR/SC execute at the cache with the
   line exclusive and only at the head of an empty store queue, so an
   atomic is ordered like a fenced access on its own thread — the
   relaxations left are on the plain accesses around it. *)
(* ------------------------------------------------------------------ *)

let sb_amo =
  {
    name = "SB+amo";
    doc = "SB read via fetch-and-add-0: r0=0/r0=0 forbidden — atomics drain the store buffer";
    init = [];
    threads =
      [|
        thr [ St ("x", 1); Amo (Add, 0, "y", 0) ];
        thr [ St ("y", 1); Amo (Add, 0, "x", 0) ];
      |];
  }

let mp_amo =
  {
    name = "MP+amo";
    doc = "MP with the flag read via amoadd-0: stale payload r1=0 forbidden TSO, allowed WMM";
    init = [];
    threads =
      [|
        thr [ St ("x", 1); St ("y", 1) ];
        thr ~warm:[ Ld (3, "x") ] [ Amo (Add, 0, "y", 0); Ld (1, "x") ];
      |];
  }

let mp_addr =
  {
    name = "MP+addr";
    doc = "MP with an address-dependent payload load: WMM still allows r0=1,r1=0";
    init = [];
    threads =
      [|
        thr ~warm:[ St ("y", 0) ] [ St ("x", 1); St ("y", 1) ];
        thr ~warm:[ Ld (3, "x") ] [ Ld (0, "y"); Ld_dep (1, "x", 0) ];
      |];
  }

(* The control-dependency shape: thread 1 relays the flag through a store
   guarded by an always-taken branch on the loaded value. The ctrl dep
   (plus in-order commit) holds the relay store until the flag load
   resolves, so z=1 genuinely means thread 1 saw y=1 — yet the final
   reader's plain payload load can still bind a stale x from its warmed
   copy, so the chained outcome survives under WMM like plain MP. *)
let mp_ctrl =
  {
    name = "MP+ctrl";
    doc = "MP relayed via a ctrl-dependent store: 1:r0=1,2:r0=1,2:r1=0 forbidden TSO, allowed WMM";
    init = [];
    threads =
      [|
        thr ~warm:[ St ("y", 0) ] [ St ("x", 1); St ("y", 1) ];
        thr ~warm:[ St ("z", 0) ] [ Ld (0, "y"); St_ctrl ("z", 1, 0) ];
        thr ~warm:[ Ld (3, "x") ] [ Ld (0, "z"); Ld (1, "x") ];
      |];
  }

let lr_sc =
  {
    name = "LR-SC";
    doc = "competing LR/SC pairs: both reading 0 and both succeeding is forbidden";
    init = [];
    threads =
      [|
        thr [ Lr (0, "x"); Sc (1, "x", 1) ];
        thr [ Lr (0, "x"); Sc (1, "x", 2) ];
      |];
  }

let amo_inc =
  {
    name = "AMO-inc";
    doc = "two fetch-and-adds: atomicity forbids a lost update, final x=2 always";
    init = [];
    threads = [| thr [ Amo (Add, 0, "x", 1) ]; thr [ Amo (Add, 1, "x", 1) ] |];
  }

(* 6 ops/thread over per-thread private locations — the DPOR scaling test.
   The threads share nothing and never write, so the whole test is a single
   Mazurkiewicz trace that DPOR walks once (~25 states); the exhaustive DFS
   still visits the full cross-product of thread-local pcs (7^4 = 2401),
   because memoization only collapses interleavings after they are
   generated. Loads only: a store's buffer drain is a separate process
   whose first event has an empty history, so the happens-before check
   cannot order it after the accesses that enabled it and DPOR would pay
   for drain placements that commute. *)
let stress6 =
  let t l = thr [ Ld (0, l); Ld (1, l); Ld (2, l); Ld (0, l); Ld (1, l); Ld (2, l) ] in
  {
    name = "Stress6";
    doc = "6 loads/thread, disjoint locations: deterministic outcome, DPOR scaling test";
    init = [];
    threads = [| t "a"; t "b"; t "c"; t "d" |];
  }

let all =
  [
    sb;
    sb_fence;
    mp;
    mp_fence;
    lb;
    s;
    r;
    w2plus2;
    corr;
    coww;
    iriw;
    iriw_fence;
    sb_amo;
    mp_amo;
    mp_addr;
    mp_ctrl;
    lr_sc;
    amo_inc;
    stress6;
  ]

let () = List.iter check all

let find name =
  List.find_opt (fun t -> String.lowercase_ascii t.name = String.lowercase_ascii name) all
