type op = St of string * int | Ld of int * string | Fence

type thread = { warm : op list; body : op list }

type t = {
  name : string;
  doc : string;
  init : (string * int) list;
  threads : thread array;
}

let nharts t = Array.length t.threads

let locs t =
  let s = Hashtbl.create 8 in
  let note l = Hashtbl.replace s l () in
  List.iter (fun (l, _) -> note l) t.init;
  Array.iter
    (fun th ->
      List.iter
        (function St (l, _) -> note l | Ld (_, l) -> note l | Fence -> ())
        (th.warm @ th.body))
    t.threads;
  List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) s [])

let init_value t l = match List.assoc_opt l t.init with Some v -> v | None -> 0

let observed t i =
  let s = Hashtbl.create 4 in
  List.iter
    (function Ld (r, _) -> Hashtbl.replace s r () | St _ | Fence -> ())
    t.threads.(i).body;
  List.sort compare (Hashtbl.fold (fun r () acc -> r :: acc) s [])

let check t =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let n = nharts t in
  if n < 1 || n > 4 then fail "litmus %s: %d threads (must be 1-4)" t.name n;
  if List.length (locs t) > 4 then fail "litmus %s: more than 4 locations" t.name;
  Array.iteri
    (fun i th ->
      if th.body = [] then fail "litmus %s: thread %d has an empty body" t.name i;
      List.iter
        (function
          | St (l, v) ->
            if v < 0 || v > 255 then fail "litmus %s: store value %d out of range" t.name v;
            ignore l
          | Ld (r, _) ->
            if r < 0 || r > 3 then fail "litmus %s: register r%d out of range" t.name r
          | Fence -> ())
        (th.warm @ th.body);
      List.iter
        (function
          | St (l, v) ->
            if v <> init_value t l then
              fail "litmus %s: warm store to %s writes %d, not the initial value %d" t.name l v
                (init_value t l)
          | Ld _ | Fence -> ())
        th.warm)
    t.threads

let outcome_labels t =
  let regs =
    List.concat
      (List.init (nharts t) (fun i ->
           List.map (fun r -> Printf.sprintf "%d:r%d" i r) (observed t i)))
  in
  regs @ locs t

let outcome_to_string t (o : int array) =
  let labels = outcome_labels t in
  String.concat " " (List.mapi (fun i l -> Printf.sprintf "%s=%d" l o.(i)) labels)

(* ------------------------------------------------------------------ *)
(* The classic suite. Warm-ups steer coherence timing: a warm store puts
   the line in the writer's cache in M state (its drain is then fast), a
   warm load leaves a shared copy whose hit can bind a value before the
   remote invalidation lands — under WMM nothing replays it. *)
(* ------------------------------------------------------------------ *)

let thr ?(warm = []) body = { warm; body }

let sb =
  {
    name = "SB";
    doc = "store buffering: r0=0 on both sides is non-SC, allowed TSO/WMM";
    init = [];
    threads =
      [|
        thr ~warm:[ Ld (0, "y") ] [ St ("x", 1); Ld (0, "y") ];
        thr ~warm:[ Ld (0, "x") ] [ St ("y", 1); Ld (0, "x") ];
      |];
  }

let sb_fence =
  {
    name = "SB+fence";
    doc = "SB with fences: r0=0/r0=0 forbidden under every model";
    init = [];
    threads =
      [|
        thr [ St ("x", 1); Fence; Ld (0, "y") ];
        thr [ St ("y", 1); Fence; Ld (0, "x") ];
      |];
  }

let mp =
  {
    name = "MP";
    doc = "message passing: r0=1,r1=0 forbidden TSO, allowed WMM";
    init = [];
    threads =
      [|
        thr ~warm:[ St ("y", 0) ] [ St ("x", 1); St ("y", 1) ];
        thr ~warm:[ Ld (3, "x") ] [ Ld (0, "y"); Ld (1, "x") ];
      |];
  }

let mp_fence =
  {
    name = "MP+fence";
    doc = "MP with fences: r0=1,r1=0 forbidden under every model";
    init = [];
    threads =
      [|
        thr [ St ("x", 1); Fence; St ("y", 1) ];
        thr [ Ld (0, "y"); Fence; Ld (1, "x") ];
      |];
  }

let lb =
  {
    name = "LB";
    doc = "load buffering: r0=1 on both sides forbidden even under WMM";
    init = [];
    threads =
      [|
        thr [ Ld (0, "x"); St ("y", 1) ];
        thr [ Ld (0, "y"); St ("x", 1) ];
      |];
  }

let s =
  {
    name = "S";
    doc = "r0=1 with final x=2 needs W-W reordering: forbidden TSO, allowed WMM";
    init = [];
    threads =
      [|
        thr ~warm:[ St ("y", 0) ] [ St ("x", 2); St ("y", 1) ];
        thr ~warm:[ St ("x", 0) ] [ Ld (0, "y"); St ("x", 1) ];
      |];
  }

let r =
  {
    name = "R";
    doc = "write race vs store buffering: final y=2 with r0=0";
    init = [];
    threads =
      [|
        thr ~warm:[ St ("y", 0) ] [ St ("x", 1); St ("y", 1) ];
        thr ~warm:[ Ld (3, "x") ] [ St ("y", 2); Ld (0, "x") ];
      |];
  }

let w2plus2 =
  {
    name = "2+2W";
    doc = "2+2W: final x=1,y=1 needs both first writes last: forbidden TSO";
    init = [];
    threads =
      [|
        thr ~warm:[ St ("y", 0) ] [ St ("x", 1); St ("y", 2) ];
        thr ~warm:[ St ("x", 0) ] [ St ("y", 1); St ("x", 2) ];
      |];
  }

let corr =
  {
    name = "CoRR";
    doc = "read-read coherence: r0=1,r1=0 forbidden under every model";
    init = [];
    threads =
      [|
        thr [ St ("x", 1) ];
        thr ~warm:[ Ld (3, "x") ] [ Ld (0, "x"); Ld (1, "x") ];
      |];
  }

let coww =
  {
    name = "CoWW";
    doc = "write-write coherence: same-address stores drain in order, final x=2";
    init = [];
    threads = [| thr [ St ("x", 1); St ("x", 2) ] |];
  }

let iriw =
  {
    name = "IRIW";
    doc = "independent reads: opposite orders forbidden TSO, allowed WMM";
    init = [];
    threads =
      [|
        thr ~warm:[ St ("x", 0) ] [ St ("x", 1) ];
        thr ~warm:[ St ("y", 0) ] [ St ("y", 1) ];
        thr ~warm:[ Ld (3, "y") ] [ Ld (0, "x"); Ld (1, "y") ];
        thr ~warm:[ Ld (3, "x") ] [ Ld (0, "y"); Ld (1, "x") ];
      |];
  }

let iriw_fence =
  {
    name = "IRIW+fence";
    doc = "IRIW with fenced readers: forbidden under every model";
    init = [];
    threads =
      [|
        thr [ St ("x", 1) ];
        thr [ St ("y", 1) ];
        thr [ Ld (0, "x"); Fence; Ld (1, "y") ];
        thr [ Ld (0, "y"); Fence; Ld (1, "x") ];
      |];
  }

let all =
  [ sb; sb_fence; mp; mp_fence; lb; s; r; w2plus2; corr; coww; iriw; iriw_fence ]

let () = List.iter check all

let find name =
  List.find_opt (fun t -> String.lowercase_ascii t.name = String.lowercase_ascii name) all
