(** Litmus-test DSL (paper, Sec. VI; RealityCheck-style consistency
    validation).

    A test is a handful of tiny threads over named shared locations. The
    same IR drives both sides of the check: {!Ref_model} enumerates the
    outcomes an SC/TSO/WMM machine may produce, and {!Compile} lowers the
    threads to a bare-metal RISC-V image for the real quad-core
    {!Workloads.Machine}. An {e outcome} is the canonical vector of every
    observed register followed by the final value of every location. *)

type op =
  | St of string * int  (** [[loc] := const] *)
  | Ld of int * string  (** [r := [loc]] — [r] is a thread-local register 0–3 *)
  | Fence  (** full fence ([FENCE]: drains stores, orders later loads) *)

type thread = {
  warm : op list;
      (** cache-warming prelude, run before the start barrier: loads pull the
          line into the local cache in shared state, stores (which must write
          the location's initial value) take it exclusive. Architecturally
          neutral; exists only to steer coherence timing. *)
  body : op list;  (** the racing instructions *)
}

type t = {
  name : string;
  doc : string;  (** one-line description, shown in reports *)
  init : (string * int) list;  (** initial values; unlisted locations are 0 *)
  threads : thread array;  (** thread [i] runs on hart [i] *)
}

(** Raises [Invalid_argument] unless: 1–4 threads, registers in 0–3, values
    in 0–255, at most 4 locations, every warm store writes the location's
    initial value, and every thread body is non-empty. *)
val check : t -> unit

val nharts : t -> int

(** Location names, sorted — the canonical location order used by outcomes
    and {!Compile}. *)
val locs : t -> string list

val init_value : t -> string -> int

(** Registers thread [i] loads into, sorted — its observed registers. *)
val observed : t -> int -> int list

(** {2 Outcomes}

    An outcome is an [int array]: thread 0's observed registers (ascending),
    then thread 1's, ..., then the final value of every location in {!locs}
    order. *)

val outcome_labels : t -> string list

val outcome_to_string : t -> int array -> string

(** {2 The classic suite} *)

val sb : t  (** store buffering: both loads may miss both stores *)

val sb_fence : t
val mp : t  (** message passing: flag seen but payload stale *)

val mp_fence : t
val lb : t  (** load buffering: forbidden even under WMM *)

val s : t
val r : t
val w2plus2 : t  (** 2+2W: both first writes finish last *)

val corr : t  (** coherence: two reads of one location never go backwards *)

val coww : t  (** coherence: same-address stores drain in order *)

val iriw : t  (** independent reads of independent writes *)

val iriw_fence : t

(** All of the above, in presentation order. *)
val all : t list

val find : string -> t option
