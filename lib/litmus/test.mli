(** Litmus-test DSL (paper, Sec. VI; RealityCheck-style consistency
    validation).

    A test is a handful of tiny threads over named shared locations. The
    same IR drives both sides of the check: {!Ref_model} enumerates the
    outcomes an SC/TSO/WMM machine may produce, and {!Compile} lowers the
    threads to a bare-metal RISC-V image for the real quad-core
    {!Workloads.Machine}. An {e outcome} is the canonical vector of every
    observed register followed by the final value of every location. *)

type amo = Add | Swap | Xor

type op =
  | St of string * int  (** [[loc] := const] *)
  | Ld of int * string  (** [r := [loc]] — [r] is a thread-local register 0–3 *)
  | Fence  (** full fence ([FENCE]: drains stores, orders later loads) *)
  | Amo of amo * int * string * int
      (** [r := [loc]; [loc] := f([loc], const)] atomically — executes at the
          cache with the line exclusive, store queue drained *)
  | Lr of int * string  (** [r := [loc]], acquiring a reservation on the line *)
  | Sc of int * string * int
      (** conditional [[loc] := const] if the reservation still holds;
          [r := 0] on success, [1] on failure (spurious failure allowed) *)
  | Ld_dep of int * string * int
      (** [Ld_dep (r, loc, dep)]: load whose address depends on register
          [dep] (xor-zero idiom) — an earlier op in the body must write [dep] *)
  | St_ctrl of string * int * int
      (** [St_ctrl (loc, const, dep)]: store behind an always-taken branch on
          register [dep] — a control dependency *)

val amo_to_string : amo -> string

(** The atomic's read-modify-write function, shared with {!Ref_model}. *)
val amo_apply : amo -> old:int -> src:int -> int

type thread = {
  warm : op list;
      (** cache-warming prelude, run before the start barrier: loads pull the
          line into the local cache in shared state, stores (which must write
          the location's initial value) take it exclusive. Architecturally
          neutral; exists only to steer coherence timing. *)
  body : op list;  (** the racing instructions *)
}

type t = {
  name : string;
  doc : string;  (** one-line description, shown in reports *)
  init : (string * int) list;  (** initial values; unlisted locations are 0 *)
  threads : thread array;  (** thread [i] runs on hart [i] *)
}

(** Raises [Invalid_argument] unless: 1–4 threads, registers in 0–3, values
    in 0–255, at most 4 locations, every warm store writes the location's
    initial value, every thread body is non-empty, warm-ups use only
    St/Ld/Fence, and every dependency source register was written earlier in
    the same body. *)
val check : t -> unit

val nharts : t -> int

(** Location names, sorted — the canonical location order used by outcomes
    and {!Compile}. *)
val locs : t -> string list

val init_value : t -> string -> int

(** Registers thread [i]'s body writes (loads, atomics, SC flags), sorted —
    its observed registers. *)
val observed : t -> int -> int list

(** {2 Outcomes}

    An outcome is an [int array]: thread 0's observed registers (ascending),
    then thread 1's, ..., then the final value of every location in {!locs}
    order. *)

val outcome_labels : t -> string list

val outcome_to_string : t -> int array -> string

(** {2 The classic suite} *)

val sb : t  (** store buffering: both loads may miss both stores *)

val sb_fence : t
val mp : t  (** message passing: flag seen but payload stale *)

val mp_fence : t
val lb : t  (** load buffering: forbidden even under WMM *)

val s : t
val r : t
val w2plus2 : t  (** 2+2W: both first writes finish last *)

val corr : t  (** coherence: two reads of one location never go backwards *)

val coww : t  (** coherence: same-address stores drain in order *)

val iriw : t  (** independent reads of independent writes *)

val iriw_fence : t

(** {2 Atomics and dependency shapes} *)

val sb_amo : t  (** SB read via fetch-and-add-0: forbidden everywhere *)

val mp_amo : t  (** MP publishing the flag with an AMO: still WMM-relaxed *)

val mp_addr : t  (** MP with an address-dependent payload load *)

val mp_ctrl : t  (** MP relayed through a control-dependent store *)

val lr_sc : t  (** competing LR/SC pairs: mutual exclusion *)

val amo_inc : t  (** two fetch-and-adds: no lost update *)

val stress6 : t  (** 6 ops/thread, disjoint locations — DPOR scaling test *)

(** All of the above, in presentation order. *)
val all : t list

val find : string -> t option
