(** Reference allowed-outcome engine: exhaustive operational enumeration,
    no external solver.

    Each model is a small abstract machine executed instruction-to-execution
    in program order; all relaxation comes from explicit buffers, following
    the operational presentations the paper's cores implement:

    - [SC]: stores hit the monolithic memory immediately.
    - [TSO]: a per-thread FIFO store buffer; loads forward from the youngest
      matching own-buffer entry; [Fence] waits for the buffer to drain.
    - [WMM]: the paper's weak model. The store buffer drains same-address
      entries in order but different addresses in any order, and each thread
      has an invalidation buffer of stale values: when a store drains, the
      overwritten memory value becomes readable (until superseded) by every
      other thread, which is how WMM load-load reordering arises. [Fence]
      acts as Commit + Reconcile: drains the store buffer and discards the
      thread's stale values.

    Atomics execute only when the thread's store buffer is empty and read
    and write the coherent memory directly — matching the DUT, which holds
    AMO/LR/SC at the commit point until older stores drain and performs them
    at the cache with the line exclusive. A coherent write kills every other
    thread's reservation on its location; SC (store-conditional) may always
    fail spuriously, as any eviction of the reserved line fails it on the
    DUT.

    Every reachable final state (all threads done, all buffers drained) is
    collected, so [allowed] is the exact outcome set of the model — the DUT,
    whose relaxations are a subset of the buffer semantics above, must stay
    inside it. The sets nest: SC ⊆ TSO ⊆ WMM. *)

type model = SC | TSO | WMM

val model_to_string : model -> string

val of_mem_model : Ooo.Config.mem_model -> model

(** Enumeration statistics from one [allowed] computation. [backend] is
    ["dpor"] or ["dfs"]; [sleep_prunes] and [races] are zero for the DFS
    baseline. *)
type enum_stats = {
  backend : string;
  states : int;
  transitions : int;
  sleep_prunes : int;
  races : int;
}

(** All outcomes (see {!Test} for the encoding) the model admits for the
    test, sorted lexicographically. Warm-up ops are ignored: they are
    architecturally neutral by construction. Enumeration runs the
    {!Mcheck.Dpor} partial-order-reduced search; {!allowed_dfs} is the
    exhaustive baseline it is tested against. *)
val allowed : Test.t -> model:model -> int array list

(** [allowed] plus the search statistics. *)
val allowed_stats : Test.t -> model:model -> int array list * enum_stats

(** Exhaustive memoized DFS over the same operational semantics — the
    pre-reduction enumerator, kept as the equivalence oracle. [None] if the
    search visits more than [budget] states. *)
val allowed_dfs : ?budget:int -> Test.t -> model:model -> (int array list * enum_stats) option

(** Membership in {!allowed} (the list is small; linear scan). *)
val is_allowed : int array list -> int array -> bool
