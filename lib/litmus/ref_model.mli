(** Reference allowed-outcome engine: exhaustive operational enumeration,
    no external solver.

    Each model is a small abstract machine executed instruction-to-execution
    in program order; all relaxation comes from explicit buffers, following
    the operational presentations the paper's cores implement:

    - [SC]: stores hit the monolithic memory immediately.
    - [TSO]: a per-thread FIFO store buffer; loads forward from the youngest
      matching own-buffer entry; [Fence] waits for the buffer to drain.
    - [WMM]: the paper's weak model. The store buffer drains same-address
      entries in order but different addresses in any order, and each thread
      has an invalidation buffer of stale values: when a store drains, the
      overwritten memory value becomes readable (until superseded) by every
      other thread, which is how WMM load-load reordering arises. [Fence]
      acts as Commit + Reconcile: drains the store buffer and discards the
      thread's stale values.

    Every reachable final state (all threads done, all buffers drained) is
    collected, so [allowed] is the exact outcome set of the model — the DUT,
    whose relaxations are a subset of the buffer semantics above, must stay
    inside it. The sets nest: SC ⊆ TSO ⊆ WMM. *)

type model = SC | TSO | WMM

val model_to_string : model -> string

val of_mem_model : Ooo.Config.mem_model -> model

(** All outcomes (see {!Test} for the encoding) the model admits for the
    test, sorted lexicographically. Warm-up ops are ignored: they are
    architecturally neutral by construction. *)
val allowed : Test.t -> model:model -> int array list

(** Membership in {!allowed} (the list is small; linear scan). *)
val is_allowed : int array list -> int array -> bool
