(** Lower a {!Test} to a bare-metal image for {!Workloads.Machine}.

    Every hart dispatches on [mhartid] to its thread block: warm-up ops, a
    start barrier (so no body instruction races a warm-up), a seed-derived
    stagger loop (skews the harts' start times — with the Shuffle scheduler
    seed this is what makes different seeds explore different
    interleavings), the body with loads landing in s2–s5, a fence, and a
    done-counter AMO. Hart 0 additionally spins until every hart has
    signalled, fences, and loads each location's final value into s6–s9.
    Each hart exits with its hart id (a harness sanity check; the real
    observations are read from the register files after the run). *)

type meta

(** [program ~seed ~stagger test] — [seed] only affects the stagger loops;
    [~stagger:false] compiles identical images for every seed. *)
val program : seed:int -> stagger:bool -> Test.t -> Workloads.Machine.program * meta

(** [read_outcome meta ~reg] assembles the canonical outcome vector (see
    {!Test}) from an architectural-register reader, i.e.
    [Machine.reg m ~hart]. *)
val read_outcome : meta -> reg:(hart:int -> int -> int64) -> int array

(** Expected exit code of each hart (its hart id). *)
val expected_exits : meta -> int64 array
