open Workloads

type cls = In_sc | Tso_relaxed | Wmm_relaxed | Forbidden

let cls_to_string = function
  | In_sc -> "SC"
  | Tso_relaxed -> "TSO-relaxed"
  | Wmm_relaxed -> "WMM-relaxed"
  | Forbidden -> "FORBIDDEN"

type run_error =
  | Timed_out of int
  | Bad_exit of string
  | Not_quiesced
  | Obligation_violated of string * string * string

exception Harness_error of run_error

let error_to_string = function
  | Timed_out c -> Printf.sprintf "timed out after %d cycles" c
  | Bad_exit s -> "bad exit codes: " ^ s
  | Not_quiesced -> "stores still buffered after every hart exited"
  | Obligation_violated (m, i, msg) -> Printf.sprintf "obligation %s/%s violated: %s" m i msg

(** Which implementation to sweep: the OOO core under its configured memory
    model, or the in-order baseline (checked against the SC set — it has no
    store buffer, so every outcome it produces must be sequentially
    consistent). *)
type dut = Dut_ooo | Dut_inorder

let dut_to_string = function Dut_ooo -> "ooo" | Dut_inorder -> "inorder"

(* Small caches and short memory latency: misses stay cheap (a litmus run is
   a few thousand cycles) while the drain window — the source of the
   interesting reorderings — stays wide relative to the bodies. *)
let litmus_mem =
  {
    Mem.Mem_sys.l1d_bytes = 2048;
    l1d_ways = 2;
    l1d_mshrs = 4;
    l1i_bytes = 2048;
    l1i_ways = 2;
    l2_bytes = 16384;
    l2_ways = 4;
    l2_mshrs = 8;
    l2_latency = 4;
    mesi = false;
    mem_latency = 24;
    mem_inflight = 8;
    l2_banks = 1;
    lookahead_override = None;
  }

let max_cycles = 300_000

(* Run an already-positioned machine and extract the outcome, with the
   harness self-checks (exit codes, store drain). The trace hub, when
   present, is finished before the checks: a trace of a failing run is the
   most useful trace of all. *)
let exec_machine ?on_cycle ?obs m meta =
  let o =
    try Machine.run ~max_cycles ?on_cycle m
    with Mcheck.Obligation.Violation (md, itf, msg) ->
      raise (Harness_error (Obligation_violated (md, itf, msg)))
  in
  Option.iter
    (fun hub ->
      Obs.Hub.finish hub ~cycles:o.Machine.cycles ~instrs:(Machine.instrs m)
        ~stats:(Machine.stats m))
    obs;
  if o.Machine.timed_out then raise (Harness_error (Timed_out o.Machine.cycles));
  let expect = Compile.expected_exits meta in
  if o.Machine.exits <> expect then
    raise
      (Harness_error
         (Bad_exit
            (String.concat " " (Array.to_list (Array.map Int64.to_string o.Machine.exits)))));
  if not (Machine.quiesced m) then raise (Harness_error Not_quiesced);
  Compile.read_outcome meta ~reg:(fun ~hart r -> Machine.reg m ~hart r)

(* Warm-fork cache for farm sweeps, one per domain: a litmus machine per
   (test, model, jobs) plus its cycle-0 snapshot. With [stagger:false] the
   compiled image is seed-independent, so re-virginizing the machine
   (restore + reseed) is schedule-identical to a cold [Shuffle seed] build
   — machine construction is paid once per domain instead of once per
   seed. *)
let warm_cache : (string, Machine.t * string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let run_one ?(jobs = 1) ?(seed = 1) ?(stagger = true) ?konata ?on_cycle ?(warm = false)
    ?(dut = Dut_ooo) ?(mesi = false) ?(obligations = false) ?(inject_lsq_bug = false) ?on_machine
    ~model test =
  let prog, meta = Compile.program ~seed ~stagger test in
  let ncores = Test.nharts test in
  let mem = { litmus_mem with Mem.Mem_sys.mesi } in
  let kind =
    match dut with
    | Dut_ooo ->
      Machine.Out_of_order
        {
          (Ooo.Config.multicore model) with
          Ooo.Config.mem;
          bug_ld_bypass_sq = inject_lsq_bug;
        }
    | Dut_inorder -> Machine.In_order { mem; tlb = Tlb.Tlb_sys.blocking_config }
  in
  if warm && (not stagger) && konata = None then begin
    let key =
      Printf.sprintf "%s/%s/%s/j%d%s%s%s" test.Test.name (dut_to_string dut)
        (match model with Ooo.Config.TSO -> "tso" | Ooo.Config.WMM -> "wmm")
        jobs
        (if mesi then "/mesi" else "")
        (if obligations then "/ob" else "")
        (if inject_lsq_bug then "/bug" else "")
    in
    let cache = Domain.DLS.get warm_cache in
    let m, img =
      match Hashtbl.find_opt cache key with
      | Some mi -> mi
      | None ->
        (* seed 1 is arbitrary: the image is taken at cycle 0 and the
           schedule RNG is re-keyed per run below *)
        let m = Machine.create ~ncores ~jobs ~mode:(Cmd.Sim.Shuffle 1) ~obligations kind prog in
        let img = Machine.snapshot m in
        Hashtbl.add cache key (m, img);
        (m, img)
    in
    Machine.restore m img;
    Machine.reseed_schedule m seed;
    let out = exec_machine ?on_cycle m meta in
    Option.iter (fun f -> f m) on_machine;
    out
  end
  else begin
    let obs =
      Option.map
        (fun f ->
          Obs.Hub.create ~konata:f
            ~meta:
              [
                ("litmus", test.Test.name);
                ("dut", dut_to_string dut);
                ("model", Ref_model.model_to_string (Ref_model.of_mem_model model));
                ("seed", string_of_int seed);
                ("jobs", string_of_int jobs);
              ]
            ~nharts:ncores ())
        konata
    in
    let m = Machine.create ~ncores ~jobs ~mode:(Cmd.Sim.Shuffle seed) ~obligations ?obs kind prog in
    let out = exec_machine ?on_cycle ?obs m meta in
    Option.iter (fun f -> f m) on_machine;
    out
  end

type report = {
  test : Test.t;
  dut : dut;
  model : Ooo.Config.mem_model;
  total_runs : int;
  hist : (int array * cls * int) list;
  forbidden : (int array * int * int * string option) list;
  mismatches : (int * int array * int array) list;
  errors : string list;
  relaxed_seen : bool;
  wmm_only_seen : bool;
  enum : (Ref_model.model * Ref_model.enum_stats) list;
  obligation_events : (string * int) list;
}

let ok r = r.forbidden = [] && r.mismatches = [] && r.errors = []

let sweep ?(seeds = 20) ?(jobs_list = [ 1; 4 ]) ?(stagger = true) ?trace_dir ?(dut = Dut_ooo)
    ?(mesi = false) ?(obligations = false) ?(inject_lsq_bug = false) ~model test =
  let sc, sc_st = Ref_model.allowed_stats test ~model:Ref_model.SC in
  let tso, tso_st = Ref_model.allowed_stats test ~model:Ref_model.TSO in
  let wmm, wmm_st = Ref_model.allowed_stats test ~model:Ref_model.WMM in
  let model_set =
    (* the in-order core has no store buffer: everything it produces must be
       SC, whatever memory model its caches were configured for *)
    match dut with
    | Dut_inorder -> sc
    | Dut_ooo -> (
      match Ref_model.of_mem_model model with
      | Ref_model.SC -> sc
      | Ref_model.TSO -> tso
      | Ref_model.WMM -> wmm)
  in
  let classify o =
    if Ref_model.is_allowed sc o then In_sc
    else if Ref_model.is_allowed tso o then Tso_relaxed
    else if Ref_model.is_allowed wmm o then Wmm_relaxed
    else Forbidden
  in
  let counts = Hashtbl.create 32 in
  let forbidden = ref [] in
  let mismatches = ref [] in
  let errors = ref [] in
  let ob_events = Hashtbl.create 8 in
  let on_machine m =
    if obligations then
      List.iter
        (fun (n, e) ->
          Hashtbl.replace ob_events n (e + Option.value ~default:0 (Hashtbl.find_opt ob_events n)))
        (Machine.obligation_stats m)
  in
  for seed = 1 to seeds do
    let first = ref None in
    List.iter
      (fun jobs ->
        match
          run_one ~jobs ~seed ~stagger ~dut ~mesi ~obligations ~inject_lsq_bug ~on_machine ~model
            test
        with
        | o ->
          Hashtbl.replace counts o (1 + Option.value ~default:0 (Hashtbl.find_opt counts o));
          (match !first with
          | None -> first := Some o
          | Some o0 -> if o0 <> o then mismatches := (seed, o0, o) :: !mismatches);
          if not (Ref_model.is_allowed model_set o) then
            if not (List.exists (fun (o', _, _, _) -> o' = o) !forbidden) then begin
              let trace =
                Option.map
                  (fun dir ->
                    let f =
                      Filename.concat dir
                        (Printf.sprintf "litmus-%s-%s-seed%d-j%d.konata"
                           test.Test.name
                           (Ref_model.model_to_string (Ref_model.of_mem_model model))
                           seed jobs)
                    in
                    (* replay the identical run with the pipeline tracer on *)
                    (try
                       ignore
                         (run_one ~jobs ~seed ~stagger ~konata:f ~dut ~mesi ~obligations
                            ~inject_lsq_bug ~model test)
                     with Harness_error _ -> ());
                    f)
                  trace_dir
              in
              forbidden := (o, seed, jobs, trace) :: !forbidden
            end
        | exception Harness_error e ->
          errors :=
            Printf.sprintf "%s seed=%d jobs=%d: %s" test.Test.name seed jobs
              (error_to_string e)
            :: !errors)
      jobs_list
  done;
  let hist =
    Hashtbl.fold (fun o n acc -> (o, classify o, n) :: acc) counts []
    |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
  in
  let seen p = List.exists (fun (_, c, _) -> p c) hist in
  {
    test;
    dut;
    model;
    total_runs = seeds * List.length jobs_list;
    hist;
    forbidden = List.rev !forbidden;
    mismatches = List.rev !mismatches;
    errors = List.rev !errors;
    relaxed_seen = seen (fun c -> c <> In_sc);
    wmm_only_seen = seen (fun c -> c = Wmm_relaxed || c = Forbidden);
    enum = [ (Ref_model.SC, sc_st); (Ref_model.TSO, tso_st); (Ref_model.WMM, wmm_st) ];
    obligation_events =
      Hashtbl.fold (fun n e acc -> (n, e) :: acc) ob_events [] |> List.sort compare;
  }

let pp_report fmt r =
  let model = Ref_model.model_to_string (Ref_model.of_mem_model r.model) in
  Format.fprintf fmt "%-10s %-8s %-4s %4d runs  %s@." r.test.Test.name (dut_to_string r.dut)
    model r.total_runs
    (if ok r then "ok" else "FAIL");
  List.iter
    (fun (m, (st : Ref_model.enum_stats)) ->
      Format.fprintf fmt "    enum %-3s %s: %d states, %d transitions, %d prunes, %d races@."
        (Ref_model.model_to_string m) st.Ref_model.backend st.states st.transitions
        st.sleep_prunes st.races)
    r.enum;
  List.iter
    (fun (n, e) -> Format.fprintf fmt "    obligation %-24s %d events@." n e)
    r.obligation_events;
  List.iter
    (fun (o, c, n) ->
      Format.fprintf fmt "    %6d  [%-11s] %s@." n (cls_to_string c)
        (Test.outcome_to_string r.test o))
    r.hist;
  List.iter
    (fun (o, seed, jobs, trace) ->
      Format.fprintf fmt "    FORBIDDEN %s (seed %d, jobs %d)%s@."
        (Test.outcome_to_string r.test o)
        seed jobs
        (match trace with Some f -> " trace: " ^ f | None -> ""))
    r.forbidden;
  List.iter
    (fun (seed, a, b) ->
      Format.fprintf fmt "    JOBS MISMATCH seed %d: %s vs %s@." seed
        (Test.outcome_to_string r.test a)
        (Test.outcome_to_string r.test b))
    r.mismatches;
  List.iter (fun e -> Format.fprintf fmt "    ERROR %s@." e) r.errors

(* ---------------------------- farm job producers ----------------------- *)

(* A farm job is one deterministic (test, model, seed) run at [jobs:1]; the
   farm layer wraps these into its generic job records. Ids encode every
   parameter, so they double as resume keys and replay specs. *)
type farm_job = {
  fj_test : Test.t;
  fj_model : Ooo.Config.mem_model;
  fj_seed : int;
  fj_stagger : bool;
  fj_obligations : bool;
}

let model_tag m = Ref_model.model_to_string (Ref_model.of_mem_model m)

let farm_job_id fj =
  Printf.sprintf "%s/%s/%s/%sseed%05d"
    (if fj.fj_obligations then "mcheck" else "litmus")
    fj.fj_test.Test.name
    (String.lowercase_ascii (model_tag fj.fj_model))
    (if fj.fj_stagger then "" else "nostagger/")
    fj.fj_seed

let farm_jobs ?(stagger = true) ?(obligations = false) ~seeds ~models tests =
  List.concat_map
    (fun fj_model ->
      List.concat_map
        (fun fj_test ->
          List.init seeds (fun i ->
              {
                fj_test;
                fj_model;
                fj_seed = i + 1;
                fj_stagger = stagger;
                fj_obligations = obligations;
              }))
        tests)
    models

(* Per-domain cache of the reference outcome sets: the operational models
   enumerate interleavings, so pay that once per test per domain rather
   than once per seed. *)
let ref_sets_cache :
    (string, int array list * int array list * int array list) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let ref_sets test =
  let cache = Domain.DLS.get ref_sets_cache in
  match Hashtbl.find_opt cache test.Test.name with
  | Some s -> s
  | None ->
    let s =
      ( Ref_model.allowed test ~model:Ref_model.SC,
        Ref_model.allowed test ~model:Ref_model.TSO,
        Ref_model.allowed test ~model:Ref_model.WMM )
    in
    Hashtbl.add cache test.Test.name s;
    s

let classify_outcome test o =
  let sc, tso, wmm = ref_sets test in
  if Ref_model.is_allowed sc o then In_sc
  else if Ref_model.is_allowed tso o then Tso_relaxed
  else if Ref_model.is_allowed wmm o then Wmm_relaxed
  else Forbidden

(* Run one farm job. Raises {!Harness_error} (and lets the cancel hook's
   exception through) — the farm retries, then quarantines. [warm] uses the
   per-domain warm-fork cache (stagger-free jobs only). *)
let farm_run ?on_cycle ?(warm = false) fj =
  let obs = ref [] in
  let on_machine m = obs := Workloads.Machine.obligation_stats m in
  let o =
    run_one ~seed:fj.fj_seed ~stagger:fj.fj_stagger ?on_cycle ~warm
      ~obligations:fj.fj_obligations ~model:fj.fj_model ~on_machine fj.fj_test
  in
  let cls = classify_outcome fj.fj_test o in
  let model_set =
    let sc, tso, wmm = ref_sets fj.fj_test in
    match Ref_model.of_mem_model fj.fj_model with
    | Ref_model.SC -> sc
    | Ref_model.TSO -> tso
    | Ref_model.WMM -> wmm
  in
  (o, cls, Ref_model.is_allowed model_set o, !obs)

(* Hand-rolled JSON: values are ints, booleans and printable ASCII names. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let reports_to_json ~seeds reports =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n  \"schema\": \"riscyoo-litmus-v1\",\n  \"seeds\": %d,\n  \"sweeps\": [\n" seeds;
  List.iteri
    (fun i r ->
      if i > 0 then add ",\n";
      add "    {\"test\": \"%s\", \"dut\": \"%s\", \"model\": \"%s\", \"runs\": %d, \"ok\": %b,\n"
        (json_escape r.test.Test.name)
        (dut_to_string r.dut)
        (Ref_model.model_to_string (Ref_model.of_mem_model r.model))
        r.total_runs (ok r);
      add "     \"relaxed_seen\": %b, \"wmm_only_seen\": %b,\n" r.relaxed_seen r.wmm_only_seen;
      add "     \"enum\": [";
      List.iteri
        (fun j (m, (st : Ref_model.enum_stats)) ->
          if j > 0 then add ", ";
          add
            "{\"model\": \"%s\", \"backend\": \"%s\", \"states\": %d, \"transitions\": %d, \
             \"sleep_prunes\": %d, \"races\": %d}"
            (Ref_model.model_to_string m) st.Ref_model.backend st.states st.transitions
            st.sleep_prunes st.races)
        r.enum;
      add "],\n     \"obligations\": [";
      List.iteri
        (fun j (n, e) ->
          if j > 0 then add ", ";
          add "{\"monitor\": \"%s\", \"events\": %d}" (json_escape n) e)
        r.obligation_events;
      add "],\n";
      add "     \"outcomes\": [";
      List.iteri
        (fun j (o, c, n) ->
          if j > 0 then add ", ";
          add "{\"outcome\": \"%s\", \"class\": \"%s\", \"count\": %d}"
            (json_escape (Test.outcome_to_string r.test o))
            (cls_to_string c) n)
        r.hist;
      add "],\n     \"forbidden\": [";
      List.iteri
        (fun j (o, seed, jobs, trace) ->
          if j > 0 then add ", ";
          add "{\"outcome\": \"%s\", \"seed\": %d, \"jobs\": %d%s}"
            (json_escape (Test.outcome_to_string r.test o))
            seed jobs
            (match trace with
            | Some f -> Printf.sprintf ", \"trace\": \"%s\"" (json_escape f)
            | None -> ""))
        r.forbidden;
      add "],\n     \"mismatches\": %d, \"errors\": [" (List.length r.mismatches);
      List.iteri
        (fun j e ->
          if j > 0 then add ", ";
          add "\"%s\"" (json_escape e))
        r.errors;
      add "]}")
    reports;
  add "\n  ]\n}\n";
  Buffer.contents b
