open Isa
open Reg_name
open Workloads

type meta = { test : Test.t; locs : string list }

(* Shared-location lines are spread 256 B apart (4 cache lines) so false
   sharing never couples two locations; the barrier and done counters live
   on their own lines well away from the data. *)
let loc_base = 0x8010_0000L
let loc_stride = 256
let barrier_ctr = 0x8011_0000L
let done_ctr = 0x8011_0100L

let loc_addr locs l =
  let rec idx i = function
    | [] -> invalid_arg ("litmus: unknown location " ^ l)
    | x :: _ when x = l -> i
    | _ :: rest -> idx (i + 1) rest
  in
  Int64.add loc_base (Int64.of_int (idx 0 locs * loc_stride))

(* Thread-local IR register r0..r3 -> s2..s5; final location values (hart 0
   only) -> s6..s9; location addresses are precomputed into a2..a5 before
   the start barrier so a body access is a single instruction — the wider
   the post-barrier race window, the more interleavings a sweep reaches.
   The remaining harness scratch registers are t0..t6/s0/a0/a7. *)
let arch_of_reg r = s2 + r
let final_arch i = s6 + i

let addr_reg locs l =
  let rec idx i = function
    | [] -> invalid_arg ("litmus: unknown location " ^ l)
    | x :: _ when x = l -> i
    | _ :: rest -> idx (i + 1) rest
  in
  a2 + idx 0 locs

(* Deterministic per-(seed, hart) stagger: 0..7 iterations of a countdown
   loop. Same seed -> same image, which is what lets a forbidden run be
   re-executed for its trace. *)
let stagger_iters seed hart =
  let h = (seed * 0x01000193) lxor ((hart + 1) * 0x85EBCA6B) in
  (h lsr 7) land 7

let emit_op p locs ~warm = function
  | Test.St (l, v) ->
    Asm.li p t2 (Int64.of_int v);
    Asm.sw p t2 0L (addr_reg locs l)
  | Test.Ld (r, l) -> Asm.lw p (if warm then t4 else arch_of_reg r) 0L (addr_reg locs l)
  | Test.Fence -> Asm.fence p
  | Test.Amo (k, r, l, v) ->
    Asm.li p t2 (Int64.of_int v);
    (match k with
    | Test.Add -> Asm.amoadd_w
    | Test.Swap -> Asm.amoswap_w
    | Test.Xor -> Asm.amoxor_w)
      p (arch_of_reg r) t2 (addr_reg locs l)
  | Test.Lr (r, l) -> Asm.lr_w p (arch_of_reg r) (addr_reg locs l)
  | Test.Sc (r, l, v) ->
    Asm.li p t2 (Int64.of_int v);
    Asm.sc_w p (arch_of_reg r) t2 (addr_reg locs l)
  | Test.Ld_dep (r, l, dep) ->
    (* address dependency: fold [dep] to zero with xor, add it into the
       location address — the load cannot issue before [dep] resolves *)
    Asm.xor p t2 (arch_of_reg dep) (arch_of_reg dep);
    Asm.add p t2 (addr_reg locs l) t2;
    Asm.lw p (arch_of_reg r) 0L t2
  | Test.St_ctrl (l, v, dep) ->
    (* control dependency: an always-taken branch on [dep] guards the store *)
    let taken = Asm.fresh p "ctrl" in
    Asm.beq p (arch_of_reg dep) (arch_of_reg dep) taken;
    Asm.label p taken;
    Asm.li p t2 (Int64.of_int v);
    Asm.sw p t2 0L (addr_reg locs l)

let emit_thread p (t : Test.t) locs ~seed ~stagger h =
  let th = t.Test.threads.(h) in
  List.iter (fun l -> Asm.li p (addr_reg locs l) (loc_addr locs l)) locs;
  List.iter (emit_op p locs ~warm:true) th.Test.warm;
  (* start barrier: no body op may race a warm-up *)
  Asm.li p s0 barrier_ctr;
  Kernel_lib.barrier p ~addr_reg:s0 ~harts:(Test.nharts t) ~tmp1:t1 ~tmp2:t2;
  (if stagger then
     let n = stagger_iters seed h in
     if n > 0 then begin
       let top = Asm.fresh p "stagger" and out = Asm.fresh p "stagger_done" in
       Asm.li p t2 (Int64.of_int n);
       Asm.label p top;
       Asm.beq p t2 zero out;
       Asm.addi p t2 t2 (-1L);
       Asm.j p top;
       Asm.label p out
     end);
  List.iter (emit_op p locs ~warm:false) th.Test.body;
  (* publish: drain own stores, then bump the done counter *)
  Asm.fence p;
  Asm.li p t5 done_ctr;
  Asm.li p t6 1L;
  Asm.amoadd_d p zero t6 t5;
  if h = 0 then begin
    let wait = Asm.fresh p "alldone" in
    Asm.li p t6 (Int64.of_int (Test.nharts t));
    Asm.label p wait;
    Asm.ld p t4 0L t5;
    Asm.bne p t4 t6 wait;
    Asm.fence p;
    List.iteri (fun i l -> Asm.lw p (final_arch i) 0L (addr_reg locs l)) locs
  end;
  Asm.li p a0 (Int64.of_int h);
  Asm.li p a7 93L;
  Asm.ecall p

let program ~seed ~stagger (t : Test.t) =
  Test.check t;
  let locs = Test.locs t in
  let p = Asm.create () in
  let n = Test.nharts t in
  Asm.csrr p t0 Csr.mhartid;
  for h = 1 to n - 1 do
    Asm.li p t1 (Int64.of_int h);
    Asm.beq p t0 t1 (Printf.sprintf "thread%d" h)
  done;
  emit_thread p t locs ~seed ~stagger 0;
  for h = 1 to n - 1 do
    Asm.label p (Printf.sprintf "thread%d" h);
    emit_thread p t locs ~seed ~stagger h
  done;
  let init_mem pmem =
    List.iter
      (fun l ->
        Phys_mem.store pmem ~bytes:4 (loc_addr locs l) (Int64.of_int (Test.init_value t l)))
      locs
  in
  (Machine.program ~init_mem p, { test = t; locs })

let read_outcome meta ~reg =
  let t = meta.test in
  let regs =
    List.concat
      (List.init (Test.nharts t) (fun i ->
           List.map
             (fun r -> Int64.to_int (reg ~hart:i (arch_of_reg r)))
             (Test.observed t i)))
  in
  let finals = List.mapi (fun i _ -> Int64.to_int (reg ~hart:0 (final_arch i))) meta.locs in
  Array.of_list (regs @ finals)

let expected_exits meta =
  Array.init (Test.nharts meta.test) Int64.of_int
