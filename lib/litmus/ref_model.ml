type model = SC | TSO | WMM

let model_to_string = function SC -> "SC" | TSO -> "TSO" | WMM -> "WMM"
let of_mem_model = function Ooo.Config.TSO -> TSO | Ooo.Config.WMM -> WMM

(* Threads are compiled to arrays of ops over integer location ids.
   Dependency shapes lower to their plain op: WMM (like the DUT's coherence
   transients) does not order dependent accesses, so [Ld_dep]/[St_ctrl]
   only constrain the hardware side. *)
type op =
  | St of int * int
  | Ld of int * int
  | Fence
  | Amo of Test.amo * int * int * int
  | Lr of int * int
  | Sc of int * int * int

type state = {
  pc : int array;
  regs : int array array; (* thread -> r0..r3 *)
  mem : int array; (* loc id -> value *)
  sb : (int * int) list array; (* thread -> (loc, v), oldest first *)
  ib : int list array array; (* thread -> loc -> stale values, oldest first *)
  resv : int option array; (* thread -> reserved location, for LR/SC *)
}

let clone s =
  {
    pc = Array.copy s.pc;
    regs = Array.map Array.copy s.regs;
    mem = Array.copy s.mem;
    sb = Array.copy s.sb;
    ib = Array.map Array.copy s.ib;
    resv = Array.copy s.resv;
  }

(* Youngest store-buffer entry for [l], if any. *)
let sb_find sb l =
  List.fold_left (fun acc (l', v) -> if l' = l then Some v else acc) None sb

let sb_has sb l = List.exists (fun (l', _) -> l' = l) sb

(* Remove the oldest entry for [l]; returns its value. *)
let sb_take_oldest sb l =
  let rec go = function
    | [] -> invalid_arg "sb_take_oldest"
    | (l', v) :: rest when l' = l -> (v, rest)
    | e :: rest ->
      let v, rest' = go rest in
      (v, e :: rest')
  in
  go sb

(* The model as a process system for {!Mcheck.Dpor}: per thread one
   program-order "exec" process plus, under TSO, one store-buffer drain
   process and, under WMM, one drain process per (thread, location) — the
   drains being separate processes is exactly the buffer nondeterminism.
   Footprints name the shared resources below; everything else (pc, regs)
   is process-local. *)
type proc = Exec of int | DrainT of int (* TSO: FIFO head *) | DrainW of int * int

let make_system model prog nthreads nlocs =
  (* resource ids: memory cell | store buffer (whole FIFO under TSO,
     per-location channel under WMM) | invalidation-buffer cell |
     reservation *)
  let r_mem l = l in
  let r_sb i l = nlocs + (i * nlocs) + (match model with TSO -> 0 | _ -> l) in
  let r_ib i l = nlocs + (nthreads * nlocs) + (i * nlocs) + l in
  let r_resv i = nlocs + (2 * nthreads * nlocs) + i in
  let nprocs =
    match model with
    | SC -> nthreads
    | TSO -> 2 * nthreads
    | WMM -> nthreads + (nthreads * nlocs)
  in
  let decode p =
    if p < nthreads then Exec p
    else
      match model with
      | SC -> assert false
      | TSO -> DrainT (p - nthreads)
      | WMM ->
        let k = p - nthreads in
        DrainW (k / nlocs, k mod nlocs)
  in
  (* A coherent write to [l] kills every other thread's reservation on it
     (the invalidation evicts the reserved line). *)
  let write_mem s' s i l v =
    s'.mem.(l) <- v;
    for q = 0 to nthreads - 1 do
      if q <> i && s.resv.(q) = Some l then s'.resv.(q) <- None
    done
  in
  (* WMM: the overwritten value becomes readable by other threads — unless
     they have their own buffered store to l, which any later load of
     theirs must read instead. *)
  let stale_push s' s i l stale =
    for q = 0 to nthreads - 1 do
      if q <> i && not (sb_has s.sb.(q) l) then s'.ib.(q).(l) <- s.ib.(q).(l) @ [ stale ]
    done
  in
  (* footprint fragments mirroring the two helpers above *)
  let fp_resv i l s acc =
    let acc = ref acc in
    for q = 0 to nthreads - 1 do
      if q <> i then acc := (r_resv q, s.resv.(q) = Some l) :: !acc
    done;
    !acc
  in
  let fp_stale i l s acc =
    let acc = ref acc in
    for q = 0 to nthreads - 1 do
      if q <> i then begin
        acc := (r_sb q l, false) :: !acc;
        if not (sb_has s.sb.(q) l) then acc := (r_ib q l, true) :: !acc
      end
    done;
    !acc
  in
  (* sb-emptiness guard of fences and atomics, as reads *)
  let fp_sb_empty i acc =
    match model with
    | SC -> acc
    | TSO -> (r_sb i 0, false) :: acc
    | WMM -> List.init nlocs (fun l -> (r_sb i l, false)) @ acc
  in
  let fetch s i = prog.(i).(s.pc.(i)) in
  let enabled s p =
    match decode p with
    | Exec i ->
      s.pc.(i) < Array.length prog.(i)
      && (match fetch s i with
         | St _ | Ld _ -> true
         | Fence | Amo _ | Lr _ | Sc _ -> model = SC || s.sb.(i) = [])
    | DrainT i -> s.sb.(i) <> []
    | DrainW (i, l) -> sb_has s.sb.(i) l
  in
  let footprint s p =
    match decode p with
    | DrainT i -> (
      match s.sb.(i) with
      | (l, _) :: _ -> fp_resv i l s [ (r_sb i 0, true); (r_mem l, true) ]
      | [] -> [])
    | DrainW (i, l) ->
      fp_stale i l s (fp_resv i l s [ (r_sb i l, true); (r_mem l, true) ])
    | Exec i -> (
      match (fetch s i, model) with
      | St (l, _), SC -> fp_resv i l s [ (r_mem l, true) ]
      | St (_, _), TSO -> [ (r_sb i 0, true) ]
      | St (l, _), WMM -> [ (r_sb i l, true); (r_ib i l, true) ]
      | Ld (_, l), SC -> [ (r_mem l, false) ]
      | Ld (_, l), TSO ->
        if sb_find s.sb.(i) l <> None then [ (r_sb i 0, false) ]
        else [ (r_sb i 0, false); (r_mem l, false) ]
      | Ld (_, l), WMM ->
        if sb_has s.sb.(i) l then [ (r_sb i l, false) ]
        else [ (r_sb i l, false); (r_mem l, false); (r_ib i l, true) ]
      | Fence, SC -> []
      | Fence, TSO -> [ (r_sb i 0, false) ]
      | Fence, WMM ->
        List.concat (List.init nlocs (fun l -> [ (r_sb i l, false); (r_ib i l, true) ]))
      | Amo (_, _, l, _), (SC | TSO) -> fp_sb_empty i (fp_resv i l s [ (r_mem l, true) ])
      | Amo (_, _, l, _), WMM ->
        fp_sb_empty i
          (fp_stale i l s (fp_resv i l s [ (r_mem l, true); (r_ib i l, true) ]))
      | Lr (_, l), (SC | TSO) -> fp_sb_empty i [ (r_mem l, false); (r_resv i, true) ]
      | Lr (_, l), WMM ->
        fp_sb_empty i [ (r_mem l, false); (r_resv i, true); (r_ib i l, true) ]
      | Sc (_, l, _), _ ->
        if s.resv.(i) = Some l then
          let base = [ (r_resv i, true); (r_mem l, true) ] in
          let base =
            if model = WMM then fp_stale i l s ((r_ib i l, true) :: base) else base
          in
          fp_sb_empty i (fp_resv i l s base)
        else fp_sb_empty i [ (r_resv i, s.resv.(i) <> None) ])
  in
  let step s p =
    match decode p with
    | DrainT i -> (
      match s.sb.(i) with
      | (l, v) :: rest ->
        let s' = clone s in
        s'.sb.(i) <- rest;
        write_mem s' s i l v;
        [ s' ]
      | [] -> [])
    | DrainW (i, l) ->
      let v, rest = sb_take_oldest s.sb.(i) l in
      let s' = clone s in
      s'.sb.(i) <- rest;
      let stale = s.mem.(l) in
      write_mem s' s i l v;
      stale_push s' s i l stale;
      [ s' ]
    | Exec i -> (
      let adv s' = s'.pc.(i) <- s.pc.(i) + 1 in
      match fetch s i with
      | St (l, v) ->
        let s' = clone s in
        adv s';
        (match model with
        | SC -> write_mem s' s i l v
        | TSO -> s'.sb.(i) <- s.sb.(i) @ [ (l, v) ]
        | WMM ->
          s'.sb.(i) <- s.sb.(i) @ [ (l, v) ];
          (* own stale values for l die: nothing older than the new store
             may be read by this thread again *)
          s'.ib.(i).(l) <- []);
        [ s' ]
      | Ld (r, l) -> (
        match if model = SC then None else sb_find s.sb.(i) l with
        | Some v ->
          (* forced: read the youngest own buffered store *)
          let s' = clone s in
          adv s';
          s'.regs.(i).(r) <- v;
          [ s' ]
        | None ->
          (* read the monolithic memory *)
          let s' = clone s in
          adv s';
          s'.regs.(i).(r) <- s.mem.(l);
          if model = WMM then s'.ib.(i).(l) <- [];
          (* WMM: or any still-live stale value; reading the k-th discards
             everything older (per-location coherence) *)
          let stale_reads =
            if model <> WMM then []
            else
              List.mapi
                (fun k v ->
                  let s' = clone s in
                  adv s';
                  s'.regs.(i).(r) <- v;
                  let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
                  s'.ib.(i).(l) <- drop k s.ib.(i).(l);
                  s')
                s.ib.(i).(l)
          in
          s' :: stale_reads)
      | Fence ->
        let s' = clone s in
        adv s';
        if model = WMM then
          for l = 0 to nlocs - 1 do
            s'.ib.(i).(l) <- []
          done;
        [ s' ]
      | Amo (k, r, l, v) ->
        (* reads and writes the coherent memory: the DUT performs atomics
           at the cache with the line exclusive *)
        let s' = clone s in
        adv s';
        let old = s.mem.(l) in
        s'.regs.(i).(r) <- old;
        write_mem s' s i l (Test.amo_apply k ~old ~src:v);
        if model = WMM then begin
          stale_push s' s i l old;
          s'.ib.(i).(l) <- []
        end;
        [ s' ]
      | Lr (r, l) ->
        let s' = clone s in
        adv s';
        s'.regs.(i).(r) <- s.mem.(l);
        s'.resv.(i) <- Some l;
        if model = WMM then s'.ib.(i).(l) <- [];
        [ s' ]
      | Sc (r, l, v) ->
        (* spurious failure is always allowed: any eviction of the reserved
           line between LR and SC fails the SC on the DUT *)
        let fail_s = clone s in
        adv fail_s;
        fail_s.regs.(i).(r) <- 1;
        fail_s.resv.(i) <- None;
        if s.resv.(i) = Some l then begin
          let s' = clone s in
          adv s';
          s'.regs.(i).(r) <- 0;
          write_mem s' s i l v;
          if model = WMM then begin
            stale_push s' s i l s.mem.(l);
            s'.ib.(i).(l) <- []
          end;
          s'.resv.(i) <- None;
          [ s'; fail_s ]
        end
        else [ fail_s ])
  in
  { Mcheck.Dpor.nprocs; enabled; step; footprint }

type enum_stats = {
  backend : string;
  states : int;
  transitions : int;
  sleep_prunes : int;
  races : int;
}

let lower (t : Test.t) =
  let locs = Test.locs t in
  let loc_id l =
    let rec go i = function
      | [] -> invalid_arg "loc_id"
      | x :: _ when x = l -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 locs
  in
  let prog =
    Array.map
      (fun (th : Test.thread) ->
        Array.of_list
          (List.map
             (function
               | Test.St (l, v) -> St (loc_id l, v)
               | Test.Ld (r, l) -> Ld (r, loc_id l)
               | Test.Fence -> Fence
               | Test.Amo (k, r, l, v) -> Amo (k, r, loc_id l, v)
               | Test.Lr (r, l) -> Lr (r, loc_id l)
               | Test.Sc (r, l, v) -> Sc (r, loc_id l, v)
               | Test.Ld_dep (r, l, _) -> Ld (r, loc_id l)
               | Test.St_ctrl (l, v, _) -> St (loc_id l, v))
             th.Test.body))
      t.threads
  in
  (prog, List.length locs, List.map (Test.init_value t) locs)

let setup (t : Test.t) ~model =
  Test.check t;
  let prog, nlocs, init_mem = lower t in
  let nthreads = Test.nharts t in
  let init =
    {
      pc = Array.make nthreads 0;
      regs = Array.make_matrix nthreads 4 0;
      mem = Array.of_list init_mem;
      sb = Array.make nthreads [];
      ib = Array.init nthreads (fun _ -> Array.make nlocs []);
      resv = Array.make nthreads None;
    }
  in
  let observed = Array.init nthreads (Test.observed t) in
  let outcome s =
    Array.of_list
      (List.concat
         (List.init nthreads (fun i -> List.map (fun r -> s.regs.(i).(r)) observed.(i)))
      @ Array.to_list s.mem)
  in
  (make_system model prog nthreads nlocs, init, outcome)

let mk_stats backend (d : Mcheck.Dpor.stats) =
  {
    backend;
    states = d.Mcheck.Dpor.states;
    transitions = d.Mcheck.Dpor.transitions;
    sleep_prunes = d.Mcheck.Dpor.sleep_prunes;
    races = d.Mcheck.Dpor.races;
  }

let collect_sorted outcomes = List.sort compare (Hashtbl.fold (fun o () acc -> o :: acc) outcomes [])

let allowed_stats (t : Test.t) ~model =
  let sys, init, outcome = setup t ~model in
  let outcomes = Hashtbl.create 64 in
  let d =
    Mcheck.Dpor.explore sys ~init ~on_terminal:(fun s -> Hashtbl.replace outcomes (outcome s) ())
  in
  (collect_sorted outcomes, mk_stats "dpor" d)

let allowed t ~model = fst (allowed_stats t ~model)

let allowed_dfs ?budget (t : Test.t) ~model =
  let sys, init, outcome = setup t ~model in
  let outcomes = Hashtbl.create 64 in
  let key s = Marshal.to_string (s.pc, s.regs, s.mem, s.sb, s.ib, s.resv) [] in
  match
    Mcheck.Dpor.explore_dfs ?budget ~key sys ~init ~on_terminal:(fun s ->
        Hashtbl.replace outcomes (outcome s) ())
  with
  | d -> Some (collect_sorted outcomes, mk_stats "dfs" d)
  | exception Mcheck.Dpor.Budget_exceeded -> None

let is_allowed set o = List.exists (fun a -> a = o) set
