type model = SC | TSO | WMM

let model_to_string = function SC -> "SC" | TSO -> "TSO" | WMM -> "WMM"
let of_mem_model = function Ooo.Config.TSO -> TSO | Ooo.Config.WMM -> WMM

(* Threads are compiled to arrays of ops over integer location ids. *)
type op = St of int * int | Ld of int * int | Fence

type state = {
  pc : int array;
  regs : int array array; (* thread -> r0..r3 *)
  mem : int array; (* loc id -> value *)
  sb : (int * int) list array; (* thread -> (loc, v), oldest first *)
  ib : int list array array; (* thread -> loc -> stale values, oldest first *)
}

let clone s =
  {
    pc = Array.copy s.pc;
    regs = Array.map Array.copy s.regs;
    mem = Array.copy s.mem;
    sb = Array.copy s.sb;
    ib = Array.map Array.copy s.ib;
  }

(* Youngest store-buffer entry for [l], if any. *)
let sb_find sb l =
  List.fold_left (fun acc (l', v) -> if l' = l then Some v else acc) None sb

let sb_has sb l = List.exists (fun (l', _) -> l' = l) sb

(* Remove the oldest entry for [l]; returns its value. *)
let sb_take_oldest sb l =
  let rec go = function
    | [] -> invalid_arg "sb_take_oldest"
    | (l', v) :: rest when l' = l -> (v, rest)
    | e :: rest ->
      let v, rest' = go rest in
      (v, e :: rest')
  in
  go sb

let successors model prog nthreads nlocs s =
  let out = ref [] in
  let push s' = out := s' :: !out in
  for i = 0 to nthreads - 1 do
    (* execute thread i's next instruction *)
    (if s.pc.(i) < Array.length prog.(i) then
       match prog.(i).(s.pc.(i)) with
       | St (l, v) ->
         let s' = clone s in
         s'.pc.(i) <- s.pc.(i) + 1;
         (match model with
         | SC -> s'.mem.(l) <- v
         | TSO -> s'.sb.(i) <- s.sb.(i) @ [ (l, v) ]
         | WMM ->
           s'.sb.(i) <- s.sb.(i) @ [ (l, v) ];
           (* own stale values for l die: nothing older than the new store
              may be read by this thread again *)
           s'.ib.(i).(l) <- []);
         push s'
       | Ld (r, l) -> (
         match if model = SC then None else sb_find s.sb.(i) l with
         | Some v ->
           (* forced: read the youngest own buffered store *)
           let s' = clone s in
           s'.pc.(i) <- s.pc.(i) + 1;
           s'.regs.(i).(r) <- v;
           push s'
         | None ->
           (* read the monolithic memory *)
           let s' = clone s in
           s'.pc.(i) <- s.pc.(i) + 1;
           s'.regs.(i).(r) <- s.mem.(l);
           if model = WMM then s'.ib.(i).(l) <- [];
           push s';
           (* WMM: or any still-live stale value; reading the k-th discards
              everything older (per-location coherence) *)
           if model = WMM then
             List.iteri
               (fun k v ->
                 let s' = clone s in
                 s'.pc.(i) <- s.pc.(i) + 1;
                 s'.regs.(i).(r) <- v;
                 let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
                 s'.ib.(i).(l) <- drop k s.ib.(i).(l);
                 push s')
               s.ib.(i).(l))
       | Fence ->
         if model = SC || s.sb.(i) = [] then begin
           let s' = clone s in
           s'.pc.(i) <- s.pc.(i) + 1;
           if model = WMM then for l = 0 to nlocs - 1 do s'.ib.(i).(l) <- [] done;
           push s'
         end);
    (* drain one entry of thread i's store buffer *)
    match model with
    | SC -> ()
    | TSO -> (
      match s.sb.(i) with
      | (l, v) :: rest ->
        let s' = clone s in
        s'.sb.(i) <- rest;
        s'.mem.(l) <- v;
        push s'
      | [] -> ())
    | WMM ->
      (* any location's oldest entry may go next *)
      let seen = Array.make nlocs false in
      List.iter
        (fun (l, _) ->
          if not seen.(l) then begin
            seen.(l) <- true;
            let v, rest = sb_take_oldest s.sb.(i) l in
            let s' = clone s in
            s'.sb.(i) <- rest;
            let stale = s.mem.(l) in
            s'.mem.(l) <- v;
            for q = 0 to nthreads - 1 do
              (* the overwritten value becomes readable by other threads —
                 unless they have their own buffered store to l, which any
                 later load of theirs must read instead *)
              if q <> i && not (sb_has s.sb.(q) l) then
                s'.ib.(q).(l) <- s.ib.(q).(l) @ [ stale ]
            done;
            push s'
          end)
        s.sb.(i)
  done;
  !out

let allowed (t : Test.t) ~model =
  Test.check t;
  let locs = Test.locs t in
  let nlocs = List.length locs in
  let loc_id l =
    let rec go i = function
      | [] -> invalid_arg "loc_id"
      | x :: _ when x = l -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 locs
  in
  let nthreads = Test.nharts t in
  let prog =
    Array.map
      (fun (th : Test.thread) ->
        Array.of_list
          (List.map
             (function
               | Test.St (l, v) -> St (loc_id l, v)
               | Test.Ld (r, l) -> Ld (r, loc_id l)
               | Test.Fence -> Fence)
             th.Test.body))
      t.threads
  in
  let init =
    {
      pc = Array.make nthreads 0;
      regs = Array.make_matrix nthreads 4 0;
      mem = Array.of_list (List.map (Test.init_value t) locs);
      sb = Array.make nthreads [];
      ib = Array.init nthreads (fun _ -> Array.make nlocs []);
    }
  in
  let observed = Array.init nthreads (Test.observed t) in
  let outcome s =
    Array.of_list
      (List.concat
         (List.init nthreads (fun i -> List.map (fun r -> s.regs.(i).(r)) observed.(i)))
      @ Array.to_list s.mem)
  in
  let seen = Hashtbl.create 4096 in
  let outcomes = Hashtbl.create 64 in
  let rec dfs s =
    let key = Marshal.to_string (s.pc, s.regs, s.mem, s.sb, s.ib) [] in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      let next = successors model prog nthreads nlocs s in
      if next = [] then Hashtbl.replace outcomes (outcome s) ()
      else List.iter dfs next
    end
  in
  dfs init;
  List.sort compare (Hashtbl.fold (fun o () acc -> o :: acc) outcomes [])

let is_allowed set o = List.exists (fun a -> a = o) set
