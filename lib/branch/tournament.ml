open Cmd

let local_hist_bits = 10
let local_entries = 1024
let global_entries = 4096

type t = {
  local_hist : int array; (* per-pc history registers *)
  local_ctr : int array; (* 3-bit counters indexed by local history *)
  global_ctr : int array; (* 2-bit counters indexed by global history *)
  choice_ctr : int array; (* 2-bit: >=2 -> use global *)
  mutable ghist : int;
}

type snapshot = { sghist : int; used_global : bool; pred : bool }

let create () =
  let t =
    {
      local_hist = Array.make local_entries 0;
      local_ctr = Array.make (1 lsl local_hist_bits) 3;
      global_ctr = Array.make global_entries 1;
      choice_ctr = Array.make global_entries 1;
      ghist = 0;
    }
  in
  State.field ~name:"tournament"
    (fun () -> (t.local_hist, t.local_ctr, t.global_ctr, t.choice_ctr, t.ghist))
    (fun (local_hist, local_ctr, global_ctr, choice_ctr, ghist) ->
      Array.blit local_hist 0 t.local_hist 0 (Array.length t.local_hist);
      Array.blit local_ctr 0 t.local_ctr 0 (Array.length t.local_ctr);
      Array.blit global_ctr 0 t.global_ctr 0 (Array.length t.global_ctr);
      Array.blit choice_ctr 0 t.choice_ctr 0 (Array.length t.choice_ctr);
      t.ghist <- ghist);
  t

let fld (ctx : Kernel.ctx) get set v = Mut.field ctx ~get ~set v
let li _t pc = (Int64.to_int pc lsr 2) land (local_entries - 1)
let gmask = global_entries - 1

let predict ctx t pc =
  let lh = t.local_hist.(li t pc) in
  let local_taken = t.local_ctr.(lh) >= 4 in
  let gi = t.ghist land gmask in
  let global_taken = t.global_ctr.(gi) >= 2 in
  let use_global = t.choice_ctr.(gi) >= 2 in
  let pred = if use_global then global_taken else local_taken in
  let snap = { sghist = t.ghist; used_global = use_global; pred } in
  (* speculative global history update *)
  fld ctx (fun () -> t.ghist) (fun v -> t.ghist <- v) (((t.ghist lsl 1) lor Bool.to_int pred) land gmask);
  (pred, snap)

let bump arr i taken max =
  let v = arr.(i) in
  if taken then min max (v + 1) else Stdlib.max 0 (v - 1)

let update ctx t ~pc ~taken ~snap =
  let l = li t pc in
  let lh = t.local_hist.(l) in
  let gi = snap.sghist land gmask in
  let local_said = t.local_ctr.(lh) >= 4 in
  let global_said = t.global_ctr.(gi) >= 2 in
  (* train both predictors *)
  Mut.set_arr ctx t.local_ctr lh (bump t.local_ctr lh taken 7);
  Mut.set_arr ctx t.global_ctr gi (bump t.global_ctr gi taken 3);
  (* train chooser towards whichever component was right, if they disagreed *)
  if local_said <> global_said then
    Mut.set_arr ctx t.choice_ctr gi (bump t.choice_ctr gi (global_said = taken) 3);
  (* local history is updated at retirement *)
  Mut.set_arr ctx t.local_hist l (((lh lsl 1) lor Bool.to_int taken) land ((1 lsl local_hist_bits) - 1))

let restore ctx t ~snap ~taken =
  fld ctx (fun () -> t.ghist) (fun v -> t.ghist <- v)
    (((snap.sghist lsl 1) lor Bool.to_int taken) land gmask)
