open Cmd

type t = {
  stack : int64 array;
  mutable sp : int;
  c_over : Stats.counter option;
  c_under : Stats.counter option;
}

type snapshot = int

let create ?(entries = 8) ?stats ?(name = "ras") () =
  let mk suffix =
    Option.map (fun s -> Stats.counter s (name ^ suffix)) stats
  in
  let t = { stack = Array.make entries 0L; sp = 0; c_over = mk ".overflows"; c_under = mk ".underflows" } in
  State.field ~name
    (fun () -> (t.stack, t.sp))
    (fun (stack, sp) ->
      Array.blit stack 0 t.stack 0 entries;
      t.sp <- sp);
  t

let snapshot t = t.sp

let push ctx t v =
  let n = Array.length t.stack in
  if t.sp >= n then Option.iter (fun c -> Stats.incr ~ctx c) t.c_over;
  Mut.set_arr ctx t.stack (t.sp mod n) v;
  Mut.field ctx ~get:(fun () -> t.sp) ~set:(fun v -> t.sp <- v) (t.sp + 1)

let pop ctx t =
  let n = Array.length t.stack in
  if t.sp = 0 then Option.iter (fun c -> Stats.incr ~ctx c) t.c_under;
  let sp' = if t.sp > 0 then t.sp - 1 else 0 in
  Mut.field ctx ~get:(fun () -> t.sp) ~set:(fun v -> t.sp <- v) sp';
  t.stack.(sp' mod n)

let restore ctx t snap = Mut.field ctx ~get:(fun () -> t.sp) ~set:(fun v -> t.sp <- v) snap
