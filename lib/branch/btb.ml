open Cmd

type entry = { mutable valid : bool; mutable epc : int64; mutable target : int64 }

type t = { entries : entry array; mask : int }

let create ?(entries = 256) () =
  let t =
    { entries = Array.init entries (fun _ -> { valid = false; epc = 0L; target = 0L }); mask = entries - 1 }
  in
  State.field ~name:"btb"
    (fun () -> t.entries)
    (fun entries -> Array.blit entries 0 t.entries 0 (Array.length t.entries));
  t

let idx t pc = (Int64.to_int pc lsr 2) land t.mask

let predict t pc =
  let e = t.entries.(idx t pc) in
  if e.valid && e.epc = pc then Some e.target else None

let update ctx t ~pc ~target ~taken =
  let e = t.entries.(idx t pc) in
  Mut.field ctx ~get:(fun () -> e.valid) ~set:(fun v -> e.valid <- v) taken;
  Mut.field ctx ~get:(fun () -> e.epc) ~set:(fun v -> e.epc <- v) pc;
  Mut.field ctx ~get:(fun () -> e.target) ~set:(fun v -> e.target <- v) target
