open Cmd

type kind = Tournament | Gshare | Bimodal

let kind_to_string = function Tournament -> "tournament" | Gshare -> "gshare" | Bimodal -> "bimodal"

type gshare_t = { gctr : int array; mutable ghist : int }
type bimodal_t = { bctr : int array }

type t =
  | T of Tournament.t
  | G of gshare_t
  | B of bimodal_t

type snapshot = ST of Tournament.snapshot | SG of int | SB

let gshare_entries = 8192
let bimodal_entries = 4096

let create = function
  | Tournament -> T (Tournament.create ())
  | Gshare ->
    let g = { gctr = Array.make gshare_entries 1; ghist = 0 } in
    State.field ~name:"gshare"
      (fun () -> (g.gctr, g.ghist))
      (fun (gctr, ghist) ->
        Array.blit gctr 0 g.gctr 0 gshare_entries;
        g.ghist <- ghist);
    G g
  | Bimodal ->
    let b = { bctr = Array.make bimodal_entries 1 } in
    State.field ~name:"bimodal"
      (fun () -> b.bctr)
      (fun bctr -> Array.blit bctr 0 b.bctr 0 bimodal_entries);
    B b

let gidx g pc = ((Int64.to_int pc lsr 2) lxor g.ghist) land (gshare_entries - 1)
let bidx pc = (Int64.to_int pc lsr 2) land (bimodal_entries - 1)
let fld (ctx : Kernel.ctx) get set v = Mut.field ctx ~get ~set v

let predict ctx t pc =
  match t with
  | T tr ->
    let taken, snap = Tournament.predict ctx tr pc in
    (taken, ST snap)
  | G g ->
    let taken = g.gctr.(gidx g pc) >= 2 in
    let snap = SG g.ghist in
    fld ctx (fun () -> g.ghist) (fun v -> g.ghist <- v)
      (((g.ghist lsl 1) lor Bool.to_int taken) land (gshare_entries - 1));
    (taken, snap)
  | B b -> (b.bctr.(bidx pc) >= 2, SB)

let bump arr i taken =
  let v = arr.(i) in
  if taken then min 3 (v + 1) else max 0 (v - 1)

let update ctx t ~pc ~taken ~snap =
  match t, snap with
  | T tr, ST s -> Tournament.update ctx tr ~pc ~taken ~snap:s
  | G g, SG h ->
    let i = (Int64.to_int pc lsr 2) lxor h land (gshare_entries - 1) in
    Mut.set_arr ctx g.gctr i (bump g.gctr i taken)
  | B b, SB ->
    let i = bidx pc in
    Mut.set_arr ctx b.bctr i (bump b.bctr i taken)
  | _ -> invalid_arg "Dir_pred.update: snapshot from a different predictor"

let restore ctx t ~snap ~taken =
  match t, snap with
  | T tr, ST s -> Tournament.restore ctx tr ~snap:s ~taken
  | G g, SG h ->
    fld ctx (fun () -> g.ghist) (fun v -> g.ghist <- v)
      (((h lsl 1) lor Bool.to_int taken) land (gshare_entries - 1))
  | B _, SB -> ()
  | _ -> invalid_arg "Dir_pred.restore: snapshot from a different predictor"
