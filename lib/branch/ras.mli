(** Return address stack, 8 entries (paper, Fig. 12).

    Speculatively pushed/popped at fetch; a misprediction redirect restores
    the stack pointer from the snapshot carried by the flushing branch. *)

type t

(** With [~stats], overflowing pushes and underflowing pops are counted as
    [name ^ ".overflows"] / [name ^ ".underflows"] — both are just
    mispredictions in waiting, but the rates matter when sizing the stack. *)
val create : ?entries:int -> ?stats:Cmd.Stats.t -> ?name:string -> unit -> t

type snapshot

val snapshot : t -> snapshot
val push : Cmd.Kernel.ctx -> t -> int64 -> unit

(** Pop; returns the predicted return address (garbage when underflowed —
    just a misprediction, never an error). *)
val pop : Cmd.Kernel.ctx -> t -> int64

val restore : Cmd.Kernel.ctx -> t -> snapshot -> unit
