(* Chrome trace_event export (the JSON array format read by chrome://tracing
   and https://ui.perfetto.dev).

   Layout: one process (pid 0), one thread per simulator partition. Each
   rule fire becomes a complete ("X") event on its partition's track, with
   consecutive-cycle fires of the same rule merged into one slice;
   per-partition fire counts become counter ("C") events; cycles where at
   least one core partition fired become "barrier" instants on the uncore
   track, marking where the parallel scheduler's end-of-cycle merge did real
   work. Timestamps are cycles, expressed as microseconds (1 cycle = 1 us).

   Everything is computed from [Rule_trace] buffers by deterministic sorts,
   so the bytes are identical at any [--jobs]. *)

let esc s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Merge a partition's chronological (rid, cycle) fires into slices
   (rid, start, len): consecutive-cycle fires of one rule fuse. *)
let slices fires =
  let open_runs = Hashtbl.create 64 in
  (* rid -> (start, last) *)
  let out = ref [] in
  List.iter
    (fun (rid, cyc) ->
      match Hashtbl.find_opt open_runs rid with
      | Some (st, last) when cyc = last + 1 ->
          Hashtbl.replace open_runs rid (st, cyc)
      | Some (st, last) ->
          out := (rid, st, last - st + 1) :: !out;
          Hashtbl.replace open_runs rid (cyc, cyc)
      | None -> Hashtbl.add open_runs rid (cyc, cyc))
    fires;
  Hashtbl.iter (fun rid (st, last) -> out := (rid, st, last - st + 1) :: !out) open_runs;
  let arr = Array.of_list !out in
  Array.sort
    (fun (r1, s1, l1) (r2, s2, l2) -> compare (s1, r1, l1) (s2, r2, l2))
    arr;
  arr

(* Per-cycle fire counts of one partition, as a chronological
   (cycle, count) list with explicit drops to 0 after gaps, deduplicated so
   only changes remain. *)
let counts fires =
  let raw = ref [] in
  List.iter
    (fun (_, cyc) ->
      match !raw with
      | (c, n) :: rest when c = cyc -> raw := (c, n + 1) :: rest
      | (c, _) :: _ when cyc > c + 1 -> raw := (cyc, 1) :: (c + 1, 0) :: !raw
      | _ -> raw := (cyc, 1) :: !raw)
    fires;
  List.rev !raw

let part_label p = if p = 0 then "partition 0 (uncore)" else Printf.sprintf "partition %d (core %d)" p (p - 1)

let to_string ~names ~parts ~rt =
  ignore parts;
  let np = Rule_trace.nparts rt in
  let b = Buffer.create 65536 in
  Buffer.add_string b "[\n";
  let first = ref true in
  let add s =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b s
  in
  add
    "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"riscyoo sim\"}}";
  for p = 0 to np - 1 do
    add
      (Printf.sprintf
         "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}"
         p (esc (part_label p)))
  done;
  let barrier = Hashtbl.create 256 in
  for p = 0 to np - 1 do
    let fires = Rule_trace.fires rt p in
    if p > 0 then
      List.iter (fun (_, cyc) -> Hashtbl.replace barrier cyc ()) fires;
    Array.iter
      (fun (rid, st, len) ->
        add
          (Printf.sprintf
             "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"name\":\"%s\",\"args\":{\"rid\":%d}}"
             p st len
             (esc (if rid < Array.length names then names.(rid) else "?"))
             rid))
      (slices fires);
    List.iter
      (fun (cyc, n) ->
        add
          (Printf.sprintf
             "{\"ph\":\"C\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"name\":\"fires.p%d\",\"args\":{\"fires\":%d}}"
             p cyc p n))
      (counts fires)
  done;
  let bcycles =
    List.sort compare (Hashtbl.fold (fun c () acc -> c :: acc) barrier [])
  in
  List.iter
    (fun cyc ->
      add
        (Printf.sprintf
           "{\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":%d,\"name\":\"barrier\",\"s\":\"t\"}"
           cyc))
    bcycles;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let write ~out ~names ~parts ~rt =
  let oc = open_out out in
  output_string oc (to_string ~names ~parts ~rt);
  close_out oc
