(** Kanata/Konata pipeline-trace export (format version 0004), as read by
    the Konata viewer (https://github.com/shioyadan/Konata).

    One file covers all harts: each instruction's [I] line carries its hart
    as the thread id, so the viewer can colour or filter by hart. File ids
    are assigned in (fetch cycle, hart, tid) order and retire ids in
    (retire cycle, hart, tid) order; since both keys are derived purely from
    the recorded per-hart streams, the output is byte-identical at any
    [--jobs]. Instructions still in flight at run end are closed with a
    synthetic flush at their last recorded cycle. *)

(** Render the whole trace. *)
val to_string : pipes:Pipe.t list -> string

val write : out:string -> pipes:Pipe.t list -> unit
