(** Deterministic, hart-ordered commit trace.

    [--trace] output used to be printed straight from the commit hooks,
    interleaving harts in rule-firing order. This sink buffers each hart's
    lines separately (single writer — the hook runs inside that hart's own
    partition, so this is parallel-safe) and {!dump} emits hart 0's lines,
    then hart 1's, ..., following the hart-ordered convention of the Mmio
    console. Appends take a [ctx] and are undone if the enclosing rule
    aborts. *)

type t

val create : nharts:int -> t
val set_active : t -> bool -> unit
val is_active : t -> bool

(** [line ctx t ~hart s] appends [s] plus a newline to [hart]'s buffer;
    no-op while inactive. *)
val line : Cmd.Kernel.ctx -> t -> hart:int -> string -> unit

(** Everything logged, hart-ordered. *)
val contents : t -> string

val dump : t -> Format.formatter -> unit
