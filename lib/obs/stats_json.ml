(* Machine-readable counter export.

   Schema "riscyoo-stats-v1":
     { "schema":  "riscyoo-stats-v1",
       "meta":    { ... caller-supplied strings ... },
       "cycles":  <int>, "instrs": <int>,
       "counters": { "<name>": <int>, ... },       (sorted by name)
       "derived":  { "<name>": <float>, ... } }    (sorted by name)

   Derived metrics are computed here, once, instead of in every consumer:
   global and per-core IPC, misses-per-kilo-instruction for every
   "*.misses" counter, per-kilo-instruction rates for mispredicts and
   pipeline kills, and occupancy averages for the "*OccSum" cycle-sampled
   sums. Rates for a "cN.*" counter are normalised by that core's own
   instruction count when present, else by the whole machine's.

   Floats are printed with %.6f so the bytes are stable across runs and
   platforms. *)

let esc s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let suffix ~suf s =
  String.length s > String.length suf
  && String.sub s (String.length s - String.length suf) (String.length suf)
     = suf

let stem ~suf s = String.sub s 0 (String.length s - String.length suf)

(* "c3.l1d.misses" -> Some "c3" *)
let core_prefix name =
  match String.index_opt name '.' with
  | Some i ->
      let p = String.sub name 0 i in
      if String.length p > 1 && p.[0] = 'c'
         && String.for_all (fun c -> c >= '0' && c <= '9')
              (String.sub p 1 (String.length p - 1))
      then Some p
      else None
  | None -> None

let derived ~cycles ~instrs counters =
  let find n = List.assoc_opt n counters in
  let per_kilo name v =
    (* normalise by the owning core's instrs when the counter is core-local *)
    let base =
      match core_prefix name with
      | Some p -> ( match find (p ^ ".instrs") with Some n when n > 0 -> n | _ -> instrs)
      | None -> instrs
    in
    if base > 0 then Some (1000.0 *. float_of_int v /. float_of_int base)
    else None
  in
  let out = ref [] in
  let add n v = out := (n, v) :: !out in
  if cycles > 0 then add "ipc" (float_of_int instrs /. float_of_int cycles);
  List.iter
    (fun (name, v) ->
      if suffix ~suf:".misses" name then
        Option.iter (add (stem ~suf:".misses" name ^ ".mpki")) (per_kilo name v)
      else if suffix ~suf:".mispredicts" name then
        Option.iter (add (stem ~suf:".mispredicts" name ^ ".mispredPki")) (per_kilo name v)
      else if suffix ~suf:".ldKillFlushes" name then
        Option.iter (add (stem ~suf:".ldKillFlushes" name ^ ".ldKillPki")) (per_kilo name v)
      else if suffix ~suf:".tsoKills" name then
        Option.iter (add (stem ~suf:".tsoKills" name ^ ".tsoKillPki")) (per_kilo name v)
      else if suffix ~suf:"OccSum" name then begin
        (* cycle-sampled occupancy sum -> average occupancy over the run *)
        let c =
          match core_prefix name with
          | Some p -> ( match find (p ^ ".cycles") with Some n when n > 0 -> n | _ -> cycles)
          | None -> cycles
        in
        if c > 0 then
          add (stem ~suf:"Sum" name ^ "Avg") (float_of_int v /. float_of_int c)
      end
      else if suffix ~suf:".instrs" name then begin
        match core_prefix name with
        | Some p -> (
            match find (p ^ ".cycles") with
            | Some c when c > 0 ->
                add (p ^ ".ipc") (float_of_int v /. float_of_int c)
            | _ -> ())
        | None -> ()
      end)
    counters;
  List.sort (fun (a, _) (b, _) -> compare a b) !out

let to_string ?(meta = []) ~cycles ~instrs ~stats () =
  let counters = Cmd.Stats.to_list stats in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"riscyoo-stats-v1\",\n  \"meta\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\n    \"%s\": \"%s\"" (esc k) (esc v)))
    meta;
  Buffer.add_string b
    (Printf.sprintf "\n  },\n  \"cycles\": %d,\n  \"instrs\": %d,\n  \"counters\": {"
       cycles instrs);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\n    \"%s\": %d" (esc k) v))
    counters;
  Buffer.add_string b "\n  },\n  \"derived\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\n    \"%s\": %.6f" (esc k) v))
    (derived ~cycles ~instrs counters);
  Buffer.add_string b "\n  }\n}\n";
  Buffer.contents b

let write ?meta ~out ~cycles ~instrs ~stats () =
  let oc = open_out out in
  output_string oc (to_string ?meta ~cycles ~instrs ~stats ());
  close_out oc
