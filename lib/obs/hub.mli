(** Observability hub: owns the trace sinks, wires them into one simulator,
    and writes the requested artifacts after the run.

    Build the hub first ([create]), build the cores against {!pipe}, then
    call {!attach} once the [Cmd.Sim.t] exists — it assigns every rule a
    stable small-integer id ([Rule.rid], schedule order), arms the
    rule-fire sink when a Chrome trace was requested, and installs the
    capture-window clock hook. After the run, {!finish} writes each
    requested file.

    When no sink is requested the hub never activates anything, so the
    instrumented cores' emission sites reduce to one load-and-branch. The
    optional [window] (half-open cycle interval) gates event {e creation}:
    instructions that started inside the window still trace to completion,
    so exported pipelines are always whole. *)

type t

val create :
  ?window:int * int ->
  ?konata:string ->
  ?chrome:string ->
  ?stats_json:string ->
  ?meta:(string * string) list ->
  nharts:int ->
  unit ->
  t

(** The per-hart instruction tracer to build core [hart] against. *)
val pipe : t -> hart:int -> Pipe.t

val attach : t -> Cmd.Sim.t -> unit

(** Write every requested artifact. *)
val finish : t -> cycles:int -> instrs:int -> stats:Cmd.Stats.t -> unit

(** {2 In-memory renditions (what {!finish} writes; used by the tests)} *)

val konata_string : t -> string
val chrome_string : t -> string
val stats_string : t -> cycles:int -> instrs:int -> stats:Cmd.Stats.t -> string
