(* Kanata/Konata pipeline-viewer export (format version 0004).

   Everything here is derived from the per-hart [Pipe.irec] arrays by
   sorting on (cycle, hart, tid) keys, so the output is a pure function of
   the recorded event streams — byte-identical at any [--jobs]. *)

type line = {
  lcyc : int; (* cycle the line belongs to *)
  lid : int; (* file id of the instruction *)
  lkind : int; (* 0 = I, 1 = L, 2 = S, 3 = R — emission order within a cycle *)
  lsub : int; (* tie-break among same-kind lines of one instruction *)
  ltxt : string; (* rendered line, without the leading cycle bookkeeping *)
}

let esc s =
  (* Labels are tab-separated fields on one line; keep them that way. *)
  String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c) s

let to_string ~pipes =
  let recs =
    List.concat_map (fun p -> Array.to_list (Pipe.records p)) pipes
  in
  (* An instruction still in flight at run end gets a synthetic flush-retire
     at its last recorded cycle, so every id in the file is closed. *)
  let last_cycle (r : Pipe.irec) =
    Array.fold_left (fun a (_, c) -> max a c) r.istart r.istages
  in
  let recs =
    List.map
      (fun (r : Pipe.irec) ->
        if r.iretire >= 0 then r
        else { r with iretire = last_cycle r; iflushed = true })
      recs
  in
  let arr = Array.of_list recs in
  (* File ids: fetch order across harts (start cycle, then hart, then tid —
     tid order within a hart is already fetch order). *)
  Array.sort
    (fun (a : Pipe.irec) b ->
      compare (a.istart, a.ihart, a.itid) (b.istart, b.ihart, b.itid))
    arr;
  let n = Array.length arr in
  (* Retire ids: Konata requires them unique and roughly retirement-ordered. *)
  let ret_order = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      let a = arr.(i) and b = arr.(j) in
      compare (a.iretire, a.ihart, a.itid) (b.iretire, b.ihart, b.itid))
    ret_order;
  let ret_id = Array.make n 0 in
  Array.iteri (fun k i -> ret_id.(i) <- k) ret_order;
  let lines = ref [] in
  let add lcyc lid lkind lsub ltxt =
    lines := { lcyc; lid; lkind; lsub; ltxt } :: !lines
  in
  Array.iteri
    (fun id (r : Pipe.irec) ->
      add r.istart id 0 0 (Printf.sprintf "I\t%d\t%d\t%d" id r.itid r.ihart);
      add r.istart id 1 0
        (Printf.sprintf "L\t%d\t0\t%Lx: %s" id r.ipc (esc r.itext));
      (* The start event is the fetch stage. *)
      add r.istart id 2 0
        (Printf.sprintf "S\t%d\t0\t%s" id (Pipe.stage_name Pipe.s_fetch));
      Array.iteri
        (fun k (code, cyc) ->
          add cyc id 2 (k + 1)
            (Printf.sprintf "S\t%d\t0\t%s" id (Pipe.stage_name code)))
        r.istages;
      add r.iretire id 3 0
        (Printf.sprintf "R\t%d\t%d\t%d" id ret_id.(id)
           (if r.iflushed then 1 else 0)))
    arr;
  let lines = Array.of_list !lines in
  Array.sort
    (fun a b ->
      compare (a.lcyc, a.lid, a.lkind, a.lsub) (b.lcyc, b.lid, b.lkind, b.lsub))
    lines;
  let b = Buffer.create (256 + (64 * Array.length lines)) in
  Buffer.add_string b "Kanata\t0004\n";
  let cur = ref min_int in
  Array.iter
    (fun l ->
      if !cur = min_int then (
        Buffer.add_string b (Printf.sprintf "C=\t%d\n" l.lcyc);
        cur := l.lcyc)
      else if l.lcyc > !cur then (
        Buffer.add_string b (Printf.sprintf "C\t%d\n" (l.lcyc - !cur));
        cur := l.lcyc);
      Buffer.add_string b l.ltxt;
      Buffer.add_char b '\n')
    lines;
  Buffer.contents b

let write ~out ~pipes =
  let oc = open_out out in
  output_string oc (to_string ~pipes);
  close_out oc
