open Cmd

(* Stage codes. The numeric order is display order in Konata, not a claim
   about pipeline order — each record carries its own timestamps. *)
let s_fetch = 0
let s_decode = 1
let s_rename = 2
let s_dispatch = 3
let s_issue = 4
let s_exec = 5
let s_mem = 6
let s_writeback = 7
let s_commit = 8
let n_stages = 9
let stage_names = [| "F"; "D"; "Rn"; "Ds"; "Is"; "X"; "M"; "W"; "Cm" |]
let stage_name c = stage_names.(c)

(* Event record layout: fixed-width groups of 4 ints in [ev]:
     [tag; tid; arg; cycle]
   tag 0 = start  (arg unused; pc/text live in the per-tid side arrays)
   tag 1 = stage  (arg = stage code)
   tag 2 = retire (arg = 1 when flushed) *)
let tag_start = 0
let tag_stage = 1
let tag_retire = 2

type t = {
  hart : int;
  mutable active : bool;
  ev : Buf.t;
  mutable pcs : int64 array; (* indexed by tid *)
  mutable txt : string array; (* indexed by tid; "" until decode *)
  mutable ntids : int;
}

let create ~hart =
  {
    hart;
    active = false;
    ev = Buf.create ();
    pcs = Array.make 256 0L;
    txt = Array.make 256 "";
    ntids = 0;
  }

(* Shared always-inactive instance: the default sink of a core built with no
   observability attached. Never activated, so it never accumulates. *)
let null = create ~hart:(-1)

let hart t = t.hart
let is_active t = t.active
let set_active t b = t.active <- b
let count t = t.ntids

let ensure_cap t tid =
  let n = Array.length t.pcs in
  if tid >= n then begin
    let n' = max (2 * n) (tid + 1) in
    let pcs = Array.make n' 0L in
    Array.blit t.pcs 0 pcs 0 n;
    t.pcs <- pcs;
    let txt = Array.make n' "" in
    Array.blit t.txt 0 txt 0 n;
    t.txt <- txt
  end

let start ctx t ~pc ~at =
  let tid = t.ntids in
  let mark = Buf.length t.ev in
  Kernel.on_abort ctx (fun () ->
      Buf.truncate t.ev mark;
      t.ntids <- tid);
  t.ntids <- tid + 1;
  ensure_cap t tid;
  t.pcs.(tid) <- pc;
  t.txt.(tid) <- "";
  Buf.push t.ev tag_start;
  Buf.push t.ev tid;
  Buf.push t.ev 0;
  Buf.push t.ev at;
  tid

(* Untracked on purpose: the text slot is always written in the same attempt
   as its {!start}, so an abort that releases the tid also guarantees the
   slot is overwritten before it is ever read again. *)
let set_text t tid s = t.txt.(tid) <- s

let stage ctx t tid code ~at =
  let mark = Buf.length t.ev in
  Kernel.on_abort ctx (fun () -> Buf.truncate t.ev mark);
  Buf.push t.ev tag_stage;
  Buf.push t.ev tid;
  Buf.push t.ev code;
  Buf.push t.ev at

let retire ctx t tid ~flushed ~at =
  let mark = Buf.length t.ev in
  Kernel.on_abort ctx (fun () -> Buf.truncate t.ev mark);
  Buf.push t.ev tag_retire;
  Buf.push t.ev tid;
  Buf.push t.ev (if flushed then 1 else 0);
  Buf.push t.ev at

(* ------------------------------------------------------------------ *)
(* Decoding into per-instruction records (export side)                 *)
(* ------------------------------------------------------------------ *)

type irec = {
  ihart : int;
  itid : int;
  ipc : int64;
  itext : string;
  istart : int; (* fetch cycle *)
  istages : (int * int) array; (* (stage code, cycle), emission order *)
  iretire : int; (* -1 when the run ended with the uop in flight *)
  iflushed : bool;
}

let records t =
  let stages = Array.make t.ntids [] in
  let retire_c = Array.make t.ntids (-1) in
  let flushed = Array.make t.ntids false in
  let starts = Array.make t.ntids 0 in
  let n = Buf.length t.ev / 4 in
  for k = 0 to n - 1 do
    let tag = Buf.get t.ev (4 * k) in
    let tid = Buf.get t.ev ((4 * k) + 1) in
    let arg = Buf.get t.ev ((4 * k) + 2) in
    let cyc = Buf.get t.ev ((4 * k) + 3) in
    if tag = tag_start then starts.(tid) <- cyc
    else if tag = tag_stage then stages.(tid) <- (arg, cyc) :: stages.(tid)
    else if retire_c.(tid) < 0 then begin
      (* keep the first retire; duplicates can arise from overlapping flush
         paths and are harmless *)
      retire_c.(tid) <- cyc;
      flushed.(tid) <- arg = 1
    end
  done;
  Array.init t.ntids (fun tid ->
      {
        ihart = t.hart;
        itid = tid;
        ipc = t.pcs.(tid);
        itext = t.txt.(tid);
        istart = starts.(tid);
        istages = Array.of_list (List.rev stages.(tid));
        iretire = retire_c.(tid);
        iflushed = flushed.(tid);
      })
