open Cmd

type t = {
  mutable active : bool;
  bufs : Buf.t array; (* per partition: (rid, cycle) pairs in fire order *)
}

let create ~nparts =
  { active = false; bufs = Array.init (max 1 nparts) (fun _ -> Buf.create ()) }

let set_active t b = t.active <- b
let nparts t = Array.length t.bufs

(* The Sim fire-site callback. Runs on whichever domain fired the rule, so
   it may only touch the firing rule's own partition buffer — which is
   exactly the single-writer discipline that keeps the parallel path
   race-free. No ctx: the scheduler invokes it strictly after the fire has
   committed, so there is nothing to undo. *)
let emit t (r : Rule.t) cyc =
  if t.active && r.Rule.rid >= 0 then begin
    let b = Array.unsafe_get t.bufs r.Rule.part in
    Buf.push b r.Rule.rid;
    Buf.push b cyc
  end

(* Per-partition fire list: (rid, cycle) pairs, chronological. *)
let fires t p =
  let b = t.bufs.(p) in
  List.init (Buf.length b / 2) (fun k -> (Buf.get b (2 * k), Buf.get b ((2 * k) + 1)))
