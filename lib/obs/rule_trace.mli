(** Per-partition rule-firing trace.

    The scheduler's fire sites call {!emit} (installed via
    [Cmd.Sim.set_rule_trace]) once per rule fire — including the vacuous
    fires accounted for fast-path skips, so the trace matches [Rule.fired]
    exactly with the fast path on or off. Fires land in the firing rule's
    own partition buffer (single writer per domain), so the per-partition
    sequences are bit-identical at any [--jobs]: within a partition, rules
    always fire serially in schedule order. *)

type t

val create : nparts:int -> t
val set_active : t -> bool -> unit
val nparts : t -> int

(** The [Sim.set_rule_trace] callback: record a fire of [rule] at [cycle].
    No-op while inactive (capture window closed) or for rules that were
    never assigned a trace id. *)
val emit : t -> Cmd.Rule.t -> int -> unit

(** All recorded fires of partition [p] as (rid, cycle) pairs,
    chronological. *)
val fires : t -> int -> (int * int) list
