open Cmd

(* Deterministic commit trace.

   Printing straight from a commit hook interleaves harts in firing order,
   which differs between schedule modes and is awkward to diff. Instead each
   hart appends to its own buffer (single writer: the hook runs inside that
   hart's partition) and the driver dumps hart 0, then hart 1, ... after the
   run — the convention the Mmio console already established. Appends are
   abort-safe: a rolled-back commit truncates its bytes away. *)

type t = { mutable active : bool; bufs : Buffer.t array }

let create ~nharts =
  { active = false; bufs = Array.init (max 1 nharts) (fun _ -> Buffer.create 4096) }

let set_active t b = t.active <- b
let is_active t = t.active

let line ctx t ~hart s =
  if t.active then begin
    let b = t.bufs.(hart) in
    let mark = Buffer.length b in
    Kernel.on_abort ctx (fun () -> Buffer.truncate b mark);
    Buffer.add_string b s;
    Buffer.add_char b '\n'
  end

(* Hart-ordered concatenation of everything logged so far. *)
let contents t =
  let b = Buffer.create 4096 in
  Array.iter (fun hb -> Buffer.add_buffer b hb) t.bufs;
  Buffer.contents b

let dump t fmt =
  Format.pp_print_string fmt (contents t);
  Format.pp_print_flush fmt ()
