(** Machine-readable counter export (schema ["riscyoo-stats-v1"]).

    The JSON object carries caller-supplied [meta] strings, the run's cycle
    and retired-instruction totals, every [Cmd.Stats] counter sorted by
    name, and a ["derived"] section computed here once instead of in every
    consumer: global and per-core IPC, ["*.mpki"] for every ["*.misses"]
    counter, per-kilo-instruction rates for mispredicts / load-kill /
    TSO-kill flushes, and ["*OccAvg"] averages for the cycle-sampled
    ["*OccSum"] counters. Rates for core-local ["cN.*"] counters are
    normalised by that core's own instruction count. Floats print as %.6f,
    keys are sorted — the bytes are a pure function of the counter values. *)

val to_string :
  ?meta:(string * string) list ->
  cycles:int ->
  instrs:int ->
  stats:Cmd.Stats.t ->
  unit ->
  string

val write :
  ?meta:(string * string) list ->
  out:string ->
  cycles:int ->
  instrs:int ->
  stats:Cmd.Stats.t ->
  unit ->
  unit
