(** Chrome trace_event (chrome://tracing, Perfetto) export of rule firing.

    One process (pid 0) with one thread track per simulator partition
    (track 0 = uncore, track [i+1] = core [i]). Rule fires become complete
    ("X") slices — consecutive-cycle fires of the same rule are merged —
    per-partition fire counts become counter ("C") series, and cycles where
    any core partition fired are marked with a "barrier" instant on the
    uncore track. One simulated cycle is rendered as one microsecond.

    [names].(rid) / [parts].(rid) describe the rules as numbered by
    [Hub.attach]. Output is a deterministic function of the recorded fires,
    hence byte-identical at any [--jobs]. *)

val to_string :
  names:string array -> parts:int array -> rt:Rule_trace.t -> string

val write :
  out:string -> names:string array -> parts:int array -> rt:Rule_trace.t -> unit
