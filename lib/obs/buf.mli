(** Growable packed-int event buffer — the storage cell behind every trace
    ring in [Obs].

    Events are appended as fixed-width groups of raw ints (no boxing, no
    per-event allocation once the array has grown to steady state), which is
    what lets emission sites inside rule bodies stay cheap. {!truncate} drops
    a suffix in O(1); abort-safe emission registers a truncation back to the
    pre-emission fill pointer as a [Kernel.on_abort] undo, so an aborted rule
    leaves no events behind. *)

type t

val create : ?capacity:int -> unit -> t

(** Number of ints currently stored. *)
val length : t -> int

val push : t -> int -> unit
val get : t -> int -> int

(** [truncate t n] drops everything at index [n] and above. *)
val truncate : t -> int -> unit

val clear : t -> unit
