(** Per-hart instruction lifecycle tracer.

    One [t] per hart. A traced instruction is assigned a {e trace id} (tid)
    when it is first seen (at decode in the OOO core, at execute in the
    in-order core — both backdate the fetch stage from the cycle recorded at
    fetch-issue); the tid rides in the uop, and every stage it passes through
    appends a [(tag, tid, arg, cycle)] group to this hart's {!Buf}.

    {b Zero cost when disabled.} [active] is a flat mutable [bool]; a core
    built against {!null} (or outside the capture window) checks it — or the
    equally flat [tid >= 0] it implies — and skips emission entirely. No
    sink attached means one load-and-branch per potential event.

    {b Race freedom.} The buffer is written only from emission sites inside
    the owning hart's rules, which all execute on that hart's partition
    domain (or the main domain when serial). No lock is needed, and the
    per-hart event sequence is identical at any [--jobs] because a
    partition's rules always run serially in schedule order.

    {b Abort safety.} Every emission registers a [Kernel.on_abort] undo that
    truncates the buffer back to its pre-emission fill pointer (and
    {!start} also returns the tid counter), so a rolled-back rule attempt
    leaves no trace. *)

type t

val create : hart:int -> t

(** Shared always-inactive instance; the default sink of an uninstrumented
    core. *)
val null : t

val hart : t -> int
val is_active : t -> bool
val set_active : t -> bool -> unit

(** Trace ids allocated so far. *)
val count : t -> int

(** {2 Stage codes} *)

val s_fetch : int
val s_decode : int
val s_rename : int
val s_dispatch : int
val s_issue : int
val s_exec : int
val s_mem : int
val s_writeback : int
val s_commit : int
val n_stages : int
val stage_name : int -> string

(** {2 Emission (called from rule bodies; [ctx] makes them abort-safe)} *)

(** [start ctx t ~pc ~at] allocates a tid for the instruction at [pc],
    recording [at] (its fetch-issue cycle) as the start of its fetch stage.
    Call only when {!is_active}. *)
val start : Cmd.Kernel.ctx -> t -> pc:int64 -> at:int -> int

(** Attach the disassembly text (known at decode). *)
val set_text : t -> int -> string -> unit

val stage : Cmd.Kernel.ctx -> t -> int -> int -> at:int -> unit
val retire : Cmd.Kernel.ctx -> t -> int -> flushed:bool -> at:int -> unit

(** {2 Export} *)

type irec = {
  ihart : int;
  itid : int;
  ipc : int64;
  itext : string;
  istart : int;  (** fetch cycle *)
  istages : (int * int) array;  (** (stage code, cycle), emission order *)
  iretire : int;  (** retire/flush cycle, -1 if still in flight at run end *)
  iflushed : bool;
}

(** Decode the packed buffer into one record per tid. *)
val records : t -> irec array
