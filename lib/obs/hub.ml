open Cmd

(* Front door of the observability subsystem: owns the sinks, wires them
   into a simulator, and writes the output files.

   Lifecycle:
     let hub = Hub.create ~nharts ~konata:(Some "out.kanata") ... ()
     (* cores are built against Hub.pipe hub ~hart *)
     Hub.attach hub sim;       (* numbers the rules, arms the sinks *)
     ... run ...
     Hub.finish hub ~cycles ~instrs ~stats

   A hub with no sink requested keeps every flag false, so instrumented
   cores pay exactly one load-and-branch per potential event — the same as
   running with no hub at all (cores then hold [Pipe.null]). *)

type t = {
  konata : string option;
  chrome : string option;
  stats_json : string option;
  window : (int * int) option; (* [a, b) capture window, cycles *)
  meta : (string * string) list;
  pipes : Pipe.t array;
  mutable rt : Rule_trace.t option;
  mutable rule_names : string array;
  mutable rule_parts : int array;
}

let create ?window ?konata ?chrome ?stats_json ?(meta = []) ~nharts () =
  {
    konata;
    chrome;
    stats_json;
    window;
    meta;
    pipes = Array.init (max 1 nharts) (fun h -> Pipe.create ~hart:h);
    rt = None;
    rule_names = [||];
    rule_parts = [||];
  }

let pipe t ~hart = t.pipes.(hart)

let in_window t cyc =
  match t.window with None -> true | Some (a, b) -> cyc >= a && cyc < b

(* Arm/disarm capture for cycle [cyc]. Gating applies to event *creation*
   (new tids, rule fires); instructions already started keep tracing to
   completion so every Konata chain stays whole. *)
let set_capture t cyc =
  let on = in_window t cyc in
  if t.konata <> None then Array.iter (fun p -> Pipe.set_active p on) t.pipes;
  match t.rt with Some rt -> Rule_trace.set_active rt on | None -> ()

let attach t sim =
  let rules = Sim.rules sim in
  List.iteri (fun i (r : Rule.t) -> r.Rule.rid <- i) rules;
  t.rule_names <- Array.of_list (List.map (fun (r : Rule.t) -> r.Rule.name) rules);
  t.rule_parts <- Array.of_list (List.map (fun (r : Rule.t) -> r.Rule.part) rules);
  (if t.chrome <> None then begin
     let nparts =
       1 + List.fold_left (fun m (r : Rule.t) -> max m r.Rule.part) 0 rules
     in
     let rt = Rule_trace.create ~nparts in
     t.rt <- Some rt;
     Sim.set_rule_trace sim (fun r cyc -> Rule_trace.emit rt r cyc)
   end);
  set_capture t 0;
  match t.window with
  | None -> ()
  | Some _ ->
      let clk = Sim.clock sim in
      (* Hooks run at tick, before the cycle number advances: re-evaluate
         the window for the cycle about to start. *)
      Clock.on_cycle_end clk (fun () -> set_capture t (Clock.now clk + 1))

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let konata_string t = Konata.to_string ~pipes:(Array.to_list t.pipes)

let chrome_string t =
  match t.rt with
  | None -> Chrome.to_string ~names:[||] ~parts:[||] ~rt:(Rule_trace.create ~nparts:1)
  | Some rt -> Chrome.to_string ~names:t.rule_names ~parts:t.rule_parts ~rt

let stats_string t ~cycles ~instrs ~stats =
  Stats_json.to_string ~meta:t.meta ~cycles ~instrs ~stats ()

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let finish t ~cycles ~instrs ~stats =
  Option.iter (fun p -> write_file p (konata_string t)) t.konata;
  Option.iter (fun p -> write_file p (chrome_string t)) t.chrome;
  Option.iter
    (fun p -> write_file p (stats_string t ~cycles ~instrs ~stats))
    t.stats_json
