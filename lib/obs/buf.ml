type t = { mutable a : int array; mutable len : int }

let create ?(capacity = 1024) () = { a = Array.make (max 1 capacity) 0; len = 0 }

let length t = t.len

let push t v =
  let n = Array.length t.a in
  if t.len = n then begin
    let bigger = Array.make (2 * n) 0 in
    Array.blit t.a 0 bigger 0 n;
    t.a <- bigger
  end;
  Array.unsafe_set t.a t.len v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Obs.Buf.get";
  Array.unsafe_get t.a i

let truncate t n = if n < t.len then t.len <- n
let clear t = t.len <- 0
