open Cmd
open Isa

(* Fetch in-flight table entry: one per outstanding fetch. *)
type fslot = {
  mutable fvalid : bool;
  mutable vpc : int64;
  mutable fepoch : int;
  mutable pred_next : int64;
  mutable fcyc : int; (* cycle the fetch was issued; only kept when tracing *)
}

type xstate =
  | XIdle
  | XDtlb of Instr.t * int64 * int (* decoded mem instr, pc, trace id *)
  | XAt of Instr.t * int (* waiting for atomic response (instr, trace id) *)

type t = {
  name : string;
  clk : Clock.t;
  hart_id : int;
  ic : Mem.L1_icache.t;
  dc : Mem.L1_dcache.t;
  tlb : Tlb.Tlb_sys.t;
  mmio : Mmio.t;
  regs : int64 array;
  mutable pc : int64; (* next pc to fetch *)
  mutable epoch : int;
  btb : Branch.Btb.t;
  fslots : fslot array;
  mutable next_fslot : int;
  f2x : (int64 * int * int64 * int) Fifo.t; (* pc, word, predicted next pc, fetch cycle *)
  mutable xst : xstate;
  mutable pending_load : (int * int) option; (* rd, tag *)
  mutable load_tag : int;
  mutable pending_store : (int64 * Bytes.t * int64) option; (* line, data, mask *)
  mutable reservation : int64 option;
  mutable halted_f : bool;
  mutable n_instret : int;
  pipe : Obs.Pipe.t;
  c_cycles : Stats.counter;
  c_instrs : Stats.counter;
  c_mispred : Stats.counter;
}

let create ?(name = "inorder") ?(pipe = Obs.Pipe.null) clk ~hart_id ~icache ~dcache ~tlb ~mmio
    ~stats () =
  (* Core-private state is built in the core's partition (hart 0 ->
     partition 1; partition 0 is the uncore). *)
  Partition.scoped (hart_id + 1) @@ fun () ->
  {
    name;
    clk;
    hart_id;
    ic = icache;
    dc = dcache;
    tlb;
    mmio;
    regs = Array.make 32 0L;
    pc = Addr_map.dram_base;
    epoch = 0;
    btb = Branch.Btb.create ();
    fslots =
      Array.init 8 (fun _ -> { fvalid = false; vpc = 0L; fepoch = 0; pred_next = 0L; fcyc = 0 });
    next_fslot = 0;
    f2x = Fifo.cf ~name:(name ^ ".f2x") clk ~capacity:4 ();
    xst = XIdle;
    pending_load = None;
    load_tag = 0;
    pending_store = None;
    reservation = None;
    halted_f = false;
    n_instret = 0;
    pipe;
    c_cycles = Stats.counter stats (name ^ ".cycles");
    c_instrs = Stats.counter stats (name ^ ".instrs");
    c_mispred = Stats.counter stats (name ^ ".mispredicts");
  }
  |> fun t ->
  (* counted at the clock edge rather than in the execute rule's body, so
     that rule can carry a can_fire predicate and be skipped when idle *)
  Clock.on_cycle_end clk (fun () -> Stats.incr t.c_cycles);
  State.field ~name:(name ^ ".core")
    (fun () ->
      ( (t.regs, t.pc, t.epoch, t.fslots, t.next_fslot),
        (t.xst, t.pending_load, t.load_tag, t.pending_store),
        (t.reservation, t.halted_f, t.n_instret) ))
    (fun ( (regs, pc, epoch, fslots, next_fslot),
           (xst, pending_load, load_tag, pending_store),
           (reservation, halted_f, n_instret) ) ->
      Array.blit regs 0 t.regs 0 32;
      t.pc <- pc;
      t.epoch <- epoch;
      Array.blit fslots 0 t.fslots 0 (Array.length t.fslots);
      t.next_fslot <- next_fslot;
      t.xst <- xst;
      t.pending_load <- pending_load;
      t.load_tag <- load_tag;
      t.pending_store <- pending_store;
      t.reservation <- reservation;
      t.halted_f <- halted_f;
      t.n_instret <- n_instret);
  (* a remote store invalidating (or the cache evicting) the reserved line
     must fail a later SC — same discipline as the out-of-order core *)
  Mem.L1_dcache.set_evict_hook t.dc (fun ctx line ->
      match t.reservation with
      | Some l when l = line ->
        Mut.field ctx ~get:(fun () -> t.reservation) ~set:(fun v -> t.reservation <- v) None
      | _ -> ());
  t

let set_pc t pc = t.pc <- pc
let set_reg t r v = if r <> 0 then t.regs.(r) <- v
let reg t r = t.regs.(r)
let halted t = t.halted_f
let instret t = t.n_instret
let fld (ctx : Kernel.ctx) get set v = Mut.field ctx ~get ~set v

(* --- fetch pipeline ------------------------------------------------------ *)

let step_fetch_issue ctx t =
  Kernel.guard ctx (not t.halted_f) "halted";
  let slot = t.fslots.(t.next_fslot) in
  Kernel.guard ctx (not slot.fvalid) "fetch slots full";
  Tlb.Tlb_sys.itlb_req ctx t.tlb ~tag:t.next_fslot t.pc;
  let pred = match Branch.Btb.predict t.btb t.pc with Some tgt -> tgt | None -> Int64.add t.pc 4L in
  fld ctx (fun () -> slot.fvalid) (fun v -> slot.fvalid <- v) true;
  fld ctx (fun () -> slot.vpc) (fun v -> slot.vpc <- v) t.pc;
  fld ctx (fun () -> slot.fepoch) (fun v -> slot.fepoch <- v) t.epoch;
  fld ctx (fun () -> slot.pred_next) (fun v -> slot.pred_next <- v) pred;
  if Obs.Pipe.is_active t.pipe then
    fld ctx (fun () -> slot.fcyc) (fun v -> slot.fcyc <- v) (Clock.now t.clk);
  fld ctx (fun () -> t.next_fslot) (fun v -> t.next_fslot <- v) ((t.next_fslot + 1) mod Array.length t.fslots);
  fld ctx (fun () -> t.pc) (fun v -> t.pc <- v) pred

let step_fetch_tlb ctx t =
  let tag, res = Tlb.Tlb_sys.itlb_resp ctx t.tlb in
  let slot = t.fslots.(tag) in
  if not slot.fvalid then failwith (t.name ^ ": orphan itlb resp");
  if slot.fepoch <> t.epoch then fld ctx (fun () -> slot.fvalid) (fun v -> slot.fvalid <- v) false
  else
    match res with
    | Tlb.Tlb_sys.Hit pa -> Mem.L1_icache.req ctx t.ic ~tag pa
    | Tlb.Tlb_sys.Fault -> failwith (t.name ^ ": instruction page fault")

let step_fetch_mem ctx t =
  let tag, _pa, words = Mem.L1_icache.resp ctx t.ic in
  let slot = t.fslots.(tag) in
  if slot.fvalid && slot.fepoch = t.epoch then
    Fifo.enq ctx t.f2x (slot.vpc, words.(0), slot.pred_next, slot.fcyc);
  fld ctx (fun () -> slot.fvalid) (fun v -> slot.fvalid <- v) false

(* --- execute -------------------------------------------------------------- *)

let redirect ctx t target =
  fld ctx (fun () -> t.pc) (fun v -> t.pc <- v) target;
  fld ctx (fun () -> t.epoch) (fun v -> t.epoch <- v) (t.epoch + 1);
  Fifo.clear ctx t.f2x

(* hazards against the single outstanding load *)
let load_hazard t (i : Instr.t) =
  match t.pending_load with
  | None -> false
  | Some (rd, _) ->
    (Instr.uses_rs1 i && i.rs1 = rd) || (Instr.uses_rs2 i && i.rs2 = rd) || (Instr.writes_rd i && i.rd = rd)

let retire ?(tid = -1) ctx t =
  fld ctx (fun () -> t.n_instret) (fun v -> t.n_instret <- v) (t.n_instret + 1);
  Stats.incr ~ctx t.c_instrs;
  (* the in-order core never retires down a wrong path, so a traced
     instruction always ends with a clean (non-flush) retire *)
  if tid >= 0 then Obs.Pipe.retire ctx t.pipe tid ~flushed:false ~at:(Clock.now t.clk)

let store_mask_data addr bytes v =
  let line = Mem.Cache_geom.line_addr addr in
  let off = Mem.Cache_geom.offset addr in
  let data = Bytes.make Mem.Cache_geom.line_bytes '\000' in
  for k = 0 to bytes - 1 do
    Bytes.set data (off + k) (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xFF))
  done;
  let mask = Int64.shift_left (Int64.sub (Int64.shift_left 1L bytes) 1L) off in
  (line, data, mask)

let exec_nonmem ctx t (i : Instr.t) pc pred_next ~tid =
  let rs1 = t.regs.(i.rs1) and rs2 = t.regs.(i.rs2) in
  let next = Int64.add pc 4L in
  let wr v = if i.rd <> 0 then Mut.set_arr ctx t.regs i.rd v in
  let actual_next = ref next in
  (match i.op with
  | Instr.Lui -> wr i.imm
  | Instr.Auipc -> wr (Int64.add pc i.imm)
  | Instr.Jal ->
    wr next;
    actual_next := Int64.add pc i.imm
  | Instr.Jalr ->
    wr next;
    actual_next := Int64.logand (Int64.add rs1 i.imm) (Int64.lognot 1L)
  | Instr.Br c -> if Exec_unit.branch_taken c rs1 rs2 then actual_next := Int64.add pc i.imm
  | Instr.OpA { alu; word; imm } -> wr (Exec_unit.alu alu ~word rs1 (if imm then i.imm else rs2))
  | Instr.MulDiv { op; word } -> wr (Exec_unit.muldiv op ~word rs1 rs2)
  | Instr.Ecall ->
    if t.regs.(17) = 93L then begin
      ignore (Mmio.store t.mmio ~hart:t.hart_id Addr_map.mmio_exit t.regs.(10));
      fld ctx (fun () -> t.halted_f) (fun v -> t.halted_f <- v) true
    end
    else failwith (t.name ^ ": unknown ecall")
  | Instr.Csr { op; imm } ->
    let addr = Int64.to_int i.imm in
    let old =
      if addr = Csr.mhartid then Int64.of_int t.hart_id
      else if addr = Csr.satp then Tlb.Tlb_sys.satp t.tlb
      else if addr = Csr.cycle || addr = Csr.time then Int64.of_int (Clock.now t.clk)
      else if addr = Csr.instret then Int64.of_int t.n_instret
      else 0L
    in
    ignore (op, imm);
    wr old
  | Instr.Ebreak | Instr.Illegal _ -> failwith (t.name ^ ": illegal/ebreak")
  | Instr.Ld _ | Instr.St _ | Instr.Lr _ | Instr.Sc _ | Instr.Amo _ | Instr.Fence | Instr.FenceI ->
    assert false);
  retire ~tid ctx t;
  if Instr.is_branch i then begin
    Branch.Btb.update ctx t.btb ~pc ~target:!actual_next ~taken:(!actual_next <> next)
  end;
  if !actual_next <> pred_next && not t.halted_f then begin
    Stats.incr ~ctx t.c_mispred;
    redirect ctx t !actual_next
  end

let step_execute ctx t =
  Kernel.guard ctx (not t.halted_f) "halted";
  match t.xst with
  | XIdle ->
    let pc, word, pred_next, fcyc = Fifo.first ctx t.f2x in
    let i = Decode.decode word in
    Kernel.guard ctx (not (load_hazard t i)) "load-use hazard";
    (* Trace ids are born here — the single execute stage is the first (and
       only) point where the instruction exists as such. The fetch stage is
       backdated to the recorded fetch-issue cycle; an aborted attempt
       (e.g. a busy-guard below) rolls the id back. *)
    let tid =
      if Obs.Pipe.is_active t.pipe then begin
        let tid = Obs.Pipe.start ctx t.pipe ~pc ~at:fcyc in
        Obs.Pipe.set_text t.pipe tid (Instr.to_string i);
        Obs.Pipe.stage ctx t.pipe tid Obs.Pipe.s_exec ~at:(Clock.now t.clk);
        tid
      end
      else -1
    in
    (* dequeue before executing: a redirect clears the queue, and the clear
       must be ordered after this dequeue *)
    if Instr.is_mem i then begin
      (match i.op with
      | Instr.Fence | Instr.FenceI ->
        (* drain outstanding memory ops *)
        Kernel.guard ctx (t.pending_load = None && t.pending_store = None) "fence drain";
        ignore (Fifo.deq ctx t.f2x);
        retire ~tid ctx t;
        if Int64.add pc 4L <> pred_next then redirect ctx t (Int64.add pc 4L)
      | _ ->
        (* at most one load and one store outstanding; atomics drain both *)
        (match i.op with
        | Instr.Ld _ | Instr.Lr _ -> Kernel.guard ctx (t.pending_load = None) "load busy"
        | Instr.St _ -> Kernel.guard ctx (t.pending_store = None) "store busy"
        | _ -> Kernel.guard ctx (t.pending_load = None && t.pending_store = None) "atomic drain");
        let va = Int64.add t.regs.(i.rs1) i.imm in
        Tlb.Tlb_sys.dtlb_req ctx t.tlb ~tag:0 va;
        ignore (Fifo.deq ctx t.f2x);
        fld ctx (fun () -> t.xst) (fun v -> t.xst <- v) (XDtlb (i, pc, tid));
        (* mem instructions never redirect; verify the fetch prediction *)
        if Int64.add pc 4L <> pred_next then redirect ctx t (Int64.add pc 4L))
    end
    else begin
      (* ecall is serializing: it samples a0/a7 straight from the register
         file (no rs1/rs2 fields, so [load_hazard] can't see them) and may
         halt the hart, after which an in-flight load's writeback would be
         lost — drain both memory slots first *)
      (match i.op with
      | Instr.Ecall ->
        Kernel.guard ctx (t.pending_load = None && t.pending_store = None) "ecall drain"
      | _ -> ());
      ignore (Fifo.deq ctx t.f2x);
      exec_nonmem ctx t i pc pred_next ~tid
    end
  | XDtlb (i, _pc, tid) ->
    let _tag, res = Tlb.Tlb_sys.dtlb_resp ctx t.tlb in
    let pa = match res with Tlb.Tlb_sys.Hit pa -> pa | Tlb.Tlb_sys.Fault -> failwith "data page fault" in
    let rs2 = t.regs.(i.rs2) in
    if tid >= 0 then Obs.Pipe.stage ctx t.pipe tid Obs.Pipe.s_mem ~at:(Clock.now t.clk);
    (match i.op with
    | Instr.Ld { width; unsigned } ->
      if Addr_map.is_mmio pa then begin
        if i.rd <> 0 then Mut.set_arr ctx t.regs i.rd (Mmio.load t.mmio ~hart:t.hart_id pa);
        retire ~tid ctx t;
        fld ctx (fun () -> t.xst) (fun v -> t.xst <- v) XIdle
      end
      else begin
        let tag = t.load_tag in
        Mem.L1_dcache.req ctx t.dc
          (Mem.L1_dcache.Ld { tag; addr = pa; bytes = Instr.bytes_of_width width; unsigned });
        fld ctx (fun () -> t.load_tag) (fun v -> t.load_tag <- v) (tag + 1);
        fld ctx (fun () -> t.pending_load) (fun v -> t.pending_load <- v) (Some (i.rd, tag));
        retire ~tid ctx t;
        fld ctx (fun () -> t.xst) (fun v -> t.xst <- v) XIdle
      end
    | Instr.St width ->
      if Addr_map.is_mmio pa then begin
        ignore (Mmio.store t.mmio ~hart:t.hart_id pa rs2);
        if pa = Addr_map.mmio_exit then fld ctx (fun () -> t.halted_f) (fun v -> t.halted_f <- v) true;
        retire ~tid ctx t;
        fld ctx (fun () -> t.xst) (fun v -> t.xst <- v) XIdle
      end
      else begin
        let line, data, mask = store_mask_data pa (Instr.bytes_of_width width) rs2 in
        Mem.L1_dcache.req ctx t.dc (Mem.L1_dcache.St { tag = 0; line });
        fld ctx (fun () -> t.pending_store) (fun v -> t.pending_store <- v) (Some (line, data, mask));
        (match t.reservation with
        | Some l when l = line -> fld ctx (fun () -> t.reservation) (fun v -> t.reservation <- v) None
        | _ -> ());
        retire ~tid ctx t;
        fld ctx (fun () -> t.xst) (fun v -> t.xst <- v) XIdle
      end
    | Instr.Lr width ->
      let bytes = Instr.bytes_of_width width in
      let f old = (None, old) in
      Mem.L1_dcache.req ctx t.dc (Mem.L1_dcache.At { tag = 0; addr = pa; bytes; f });
      fld ctx (fun () -> t.reservation) (fun v -> t.reservation <- v)
        (Some (Mem.Cache_geom.line_addr pa));
      fld ctx (fun () -> t.xst) (fun v -> t.xst <- v) (XAt (i, tid))
    | Instr.Sc width ->
      let bytes = Instr.bytes_of_width width in
      let line = Mem.Cache_geom.line_addr pa in
      (* the reservation is checked when the store-conditional performs at
         the cache (line exclusive), not at issue: a remote write between
         issue and drain clears it through the eviction hook and must fail
         this SC. Consumed at completion (XAt), success or not. *)
      let f _old = if t.reservation = Some line then (Some rs2, 0L) else (None, 1L) in
      Mem.L1_dcache.req ctx t.dc (Mem.L1_dcache.At { tag = 0; addr = pa; bytes; f });
      fld ctx (fun () -> t.xst) (fun v -> t.xst <- v) (XAt (i, tid))
    | Instr.Amo { op; width } ->
      let bytes = Instr.bytes_of_width width in
      let f old = (Some (Exec_unit.amo op width ~old ~src:rs2), old) in
      Mem.L1_dcache.req ctx t.dc (Mem.L1_dcache.At { tag = 0; addr = pa; bytes; f });
      fld ctx (fun () -> t.xst) (fun v -> t.xst <- v) (XAt (i, tid))
    | _ -> assert false)
  | XAt (i, tid) ->
    let _tag, result = Mem.L1_dcache.resp_at ctx t.dc in
    let result =
      match i.op with
      | Instr.Lr Instr.W | Instr.Amo { width = Instr.W; _ } -> Xlen.sext ~bits:32 result
      | _ -> result
    in
    (match i.op with
    | Instr.Sc _ -> fld ctx (fun () -> t.reservation) (fun v -> t.reservation <- v) None
    | _ -> ());
    if i.rd <> 0 then Mut.set_arr ctx t.regs i.rd result;
    retire ~tid ctx t;
    fld ctx (fun () -> t.xst) (fun v -> t.xst <- v) XIdle

let step_load_resp ctx t =
  let tag, v = Mem.L1_dcache.resp_ld ctx t.dc in
  match t.pending_load with
  | Some (rd, ptag) when ptag = tag ->
    if rd <> 0 then Mut.set_arr ctx t.regs rd v;
    fld ctx (fun () -> t.pending_load) (fun v -> t.pending_load <- v) None
  | _ -> failwith (t.name ^ ": orphan load resp")

let step_store_resp ctx t =
  let _tag = Mem.L1_dcache.resp_st ctx t.dc in
  match t.pending_store with
  | Some (line, data, mask) ->
    Mem.L1_dcache.write_data ctx t.dc ~line ~data ~mask;
    fld ctx (fun () -> t.pending_store) (fun v -> t.pending_store <- v) None
  | None -> failwith (t.name ^ ": orphan store resp")

let rules t =
  Partition.scoped (t.hart_id + 1) @@ fun () ->
  [
    Rule.make (t.name ^ ".loadResp")
      ~can_fire:(fun () -> Mem.L1_dcache.resp_ld_ready t.dc)
      ~watches:[ Mem.L1_dcache.resp_ld_signal t.dc ]
      ~fp:(Mem.L1_dcache.fp_resp_ld t.dc) ~vacuous:true
      (fun ctx -> ignore (Kernel.attempt ctx (fun ctx -> step_load_resp ctx t)));
    Rule.make (t.name ^ ".storeResp")
      ~can_fire:(fun () -> Mem.L1_dcache.resp_st_ready t.dc)
      ~watches:[ Mem.L1_dcache.resp_st_signal t.dc ]
      ~fp:(Mem.L1_dcache.fp_resp_st t.dc) ~vacuous:true
      (fun ctx -> ignore (Kernel.attempt ctx (fun ctx -> step_store_resp ctx t)));
    (* [xst] and [halted_f] are mutated only by this rule itself, so while
       parked (necessarily [XIdle] with [f2x] empty) the predicate can only
       flip true via an [f2x] enqueue — which touches the watched signal. *)
    Rule.make (t.name ^ ".execute")
      ~can_fire:(fun () -> (not t.halted_f) && (t.xst <> XIdle || Fifo.peek_size t.f2x > 0))
      ~watches:[ Fifo.signal t.f2x ]
      ~fp:
        ([ Fifo.fp_first t.f2x; Fifo.fp_deq t.f2x; Fifo.fp_clear t.f2x ]
        @ Tlb.Tlb_sys.fp_dtlb_req t.tlb @ Tlb.Tlb_sys.fp_dtlb_resp t.tlb
        @ Mem.L1_dcache.fp_req t.dc @ Mem.L1_dcache.fp_resp_at t.dc)
      ~vacuous:true
      (fun ctx -> ignore (Kernel.attempt ctx (fun ctx -> step_execute ctx t)));
    (* fetch slots are mutated only by this rule; the other work sources
       (I$ and I-TLB responses) are watched queues *)
    Rule.make (t.name ^ ".fetch")
      ~can_fire:(fun () ->
        Mem.L1_icache.resp_ready t.ic
        || Tlb.Tlb_sys.itlb_resp_ready t.tlb
        || ((not t.halted_f) && not t.fslots.(t.next_fslot).fvalid))
      ~watches:[ Mem.L1_icache.resp_signal t.ic; Tlb.Tlb_sys.itlb_resp_signal t.tlb ]
      ~fp:
        (Mem.L1_icache.fp_resp t.ic
        @ [ Fifo.fp_enq t.f2x ]
        @ Tlb.Tlb_sys.fp_itlb_resp t.tlb
        @ Mem.L1_icache.fp_req t.ic @ Tlb.Tlb_sys.fp_itlb_req t.tlb)
      ~vacuous:true
      (fun ctx ->
        ignore (Kernel.attempt ctx (fun ctx -> step_fetch_mem ctx t));
        ignore (Kernel.attempt ctx (fun ctx -> step_fetch_tlb ctx t));
        ignore (Kernel.attempt ctx (fun ctx -> step_fetch_issue ctx t)));
  ]
