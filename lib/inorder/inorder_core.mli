(** The in-order baseline core — the stand-in for Rocket (paper, Fig. 13).

    A 1-wide in-order pipeline in the CMD style: pipelined fetch through the
    I-TLB and I-cache with BTB next-line prediction, and an execute stage
    that overlaps at most one outstanding load and one outstanding store with
    subsequent independent instructions (a 1-entry scoreboard), exactly the
    degree of latency hiding a simple in-order core manages. Memory traffic
    goes through the same coherent cache hierarchy and TLBs as the OOO core;
    only the memory latency parameter distinguishes Rocket-10 from
    Rocket-120 in the evaluation. *)

type t

val create :
  ?name:string ->
  ?pipe:Obs.Pipe.t ->
  Cmd.Clock.t ->
  hart_id:int ->
  icache:Mem.L1_icache.t ->
  dcache:Mem.L1_dcache.t ->
  tlb:Tlb.Tlb_sys.t ->
  mmio:Isa.Mmio.t ->
  stats:Cmd.Stats.t ->
  unit ->
  t

val set_pc : t -> int64 -> unit
val set_reg : t -> int -> int64 -> unit
val reg : t -> int -> int64
val halted : t -> bool
val instret : t -> int
val rules : t -> Cmd.Rule.t list
