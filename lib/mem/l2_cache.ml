open Cmd

type line = {
  mutable tag : int64;
  mutable valid : bool;
  mutable dirty : bool;
  data : Bytes.t;
  dir : Msg.state array;
  mutable busy : bool;
}

type kind = Child of { child : int; want : Msg.state } | Walker of { tag : int; addr : int64 }

type mshr = {
  mutable valid : bool;
  mutable mline : int64;
  mutable kind : kind;
  mutable way : int; (* -1 until a way is owned *)
  mutable victim : int64 option; (* line being recalled out of the way *)
  mutable victim_preq_sent : bool array;
  mutable fetch_sent : bool;
  mutable dg_sent : bool array;
}

type t = {
  name : string;
  nchildren : int;
  geom : Cache_geom.t;
  lines : line array array;
  mshrs : mshr array;
  dram : Dram.t;
  creq_q : Msg.creq Fifo.t;
  cresp_q : Msg.cresp Fifo.t;
  preq_o : (int * Msg.preq) Fifo.t;
  presp_o : (int * Msg.presp) Fifo.t;
  walk_req_q : (int * int64) Fifo.t;
  walk_resp_q : (int * int64) Fifo.t;
  (* responses sit in delay queues for [latency] cycles: the L2's access
     time, which DRAM latency does not include *)
  clk : Clock.t;
  latency : int;
  mesi : bool;
  (* Address-interleaved banking: this instance serves only line addresses
     whose [bank_bits]-wide field just above the line offset equals
     [bank_id]; set index and tag skip that field so every set is usable.
     [(0, 0)] — the default single bank — degenerates to the unbanked
     address split. *)
  bank_id : int;
  bank_bits : int;
  part : int; (* partition this bank was built in (uncore for the unbanked L2) *)
  (* Response-latency floor this design declared to the epoch engine (minus
     any slack the caller attributes to other pipeline stages); checked
     against [latency] when the partition audit runs. 0 = no declaration. *)
  declared_min : int;
  presp_delay : (int * int * Msg.presp) Fifo.t; (* ready, child, grant *)
  preq_delay : (int * int * Msg.preq) Fifo.t; (* ready, child, demand *)
  walk_delay : (int * int * int64) Fifo.t; (* ready, tag, data *)
  mutable rotor : int;
  c_hit : Stats.counter;
  c_miss : Stats.counter;
  c_recalls : Stats.counter;
  c_mshr_occ : Stats.counter;
  ob_grant : Mcheck.Obligation.monitor;
}

let create ?(name = "l2") ?(bank = (0, 0)) ?(declared_min = 0) ?in_lookahead clk ~nchildren ~geom
    ~mshrs ?(latency = 0) ?(mesi = false) ~dram ~stats () =
  let bank_id, bank_bits = bank in
  let mk_line () =
    {
      tag = -1L;
      valid = false;
      dirty = false;
      data = Bytes.make Cache_geom.line_bytes '\000';
      dir = Array.make nchildren Msg.I;
      busy = false;
    }
  in
  let mk_mshr () =
    {
      valid = false;
      mline = 0L;
      kind = Walker { tag = 0; addr = 0L };
      way = -1;
      victim = None;
      victim_preq_sent = Array.make nchildren false;
      fetch_sent = false;
      dg_sent = Array.make nchildren false;
    }
  in
  let t =
  {
    name;
    nchildren;
    geom;
    lines = Array.init geom.Cache_geom.sets (fun _ -> Array.init geom.Cache_geom.ways (fun _ -> mk_line ()));
    mshrs = Array.init mshrs (fun _ -> mk_mshr ());
    dram;
    (* The six child/walker-facing queues may straddle a partition boundary
       when the bank is its own partition; [in_lookahead] declares their
       epoch lookahead. The delay queues and the DRAM pipe are bank-private.
       Capacities clamp to the cf FIFO's 56-slot ceiling at high core
       counts; the tick rule enqueues at most once per cycle, so a delay
       queue never holds more than [latency + 1] entries anyway, and input
       queues just backpressure through their guards. *)
    creq_q = Fifo.cf ~name:(name ^ ".creq") ?lookahead:in_lookahead clk ~capacity:(min 56 (4 * nchildren)) ();
    cresp_q = Fifo.cf ~name:(name ^ ".cresp") ?lookahead:in_lookahead clk ~capacity:(min 56 (4 * nchildren)) ();
    preq_o = Fifo.cf ~name:(name ^ ".preq") ?lookahead:in_lookahead clk ~capacity:(min 56 (4 * nchildren)) ();
    presp_o = Fifo.cf ~name:(name ^ ".presp") ?lookahead:in_lookahead clk ~capacity:(min 56 (4 * nchildren)) ();
    walk_req_q = Fifo.cf ~name:(name ^ ".walkreq") ?lookahead:in_lookahead clk ~capacity:4 ();
    walk_resp_q = Fifo.cf ~name:(name ^ ".walkresp") ?lookahead:in_lookahead clk ~capacity:4 ();
    clk;
    latency;
    mesi;
    bank_id;
    bank_bits;
    part = Partition.ambient ();
    declared_min;
    presp_delay = Fifo.cf ~name:(name ^ ".presp.delay") clk ~capacity:(min 56 (4 * nchildren)) ();
    preq_delay = Fifo.cf ~name:(name ^ ".preq.delay") clk ~capacity:(min 56 (4 * nchildren)) ();
    walk_delay = Fifo.cf ~name:(name ^ ".walk.delay") clk ~capacity:8 ();
    rotor = 0;
    c_hit = Stats.counter stats (name ^ ".hits");
    c_miss = Stats.counter stats (name ^ ".misses");
    c_recalls = Stats.counter stats (name ^ ".recalls");
    c_mshr_occ = Stats.counter stats (name ^ ".mshrOccSum");
    ob_grant =
      Mcheck.Obligation.declare ~module_:"mem.l2" ~interface:"grant"
        ~doc:
          "a grant message may only leave the parent when the directory is \
           compatible with the granted state (exclusive implies every other \
           child invalid, shared implies no other owner)"
        ();
  }
  in
  State.field ~name:(name ^ ".arrays")
    (fun () -> (t.lines, t.mshrs, t.rotor))
    (fun (lines, mshrs, rotor) ->
      Array.iteri (fun s ways -> Array.blit ways 0 t.lines.(s) 0 (Array.length ways)) lines;
      Array.blit mshrs 0 t.mshrs 0 (Array.length t.mshrs);
      t.rotor <- rotor);
  (* MSHR occupancy sampled at the clock edge; divide by cycles for the
     average. The hook runs in this bank's partition group (post-barrier on
     the main domain, or on the bank's own domain under epoch execution),
     and only ever touches this bank's counter — single writer either way. *)
  Clock.on_cycle_end clk (fun () ->
      let n = Array.fold_left (fun a (m : mshr) -> if m.valid then a + 1 else a) 0 t.mshrs in
      if n > 0 then Stats.incr ~by:n t.c_mshr_occ);
  (* Directory exclusivity (paper Sec. VI): a line owned M (or E under
     MESI) by one child must be I in every other child — the parent only
     grants after downgrading everyone else, so two owners at a cycle
     boundary means the protocol state itself was corrupted. *)
  Verif.Invariant.register ~name:"l2.dir-exclusive" (fun () ->
      Array.iteri
        (fun set_idx ways ->
          Array.iter
            (fun (ln : line) ->
              if ln.valid then begin
                let owner = ref (-1) in
                Array.iteri
                  (fun c st -> if st = Msg.M || st = Msg.E then owner := c)
                  ln.dir;
                if !owner >= 0 then
                  Array.iteri
                    (fun c st ->
                      if c <> !owner && st <> Msg.I then
                        Verif.Invariant.fail "l2.dir-exclusive"
                          "%s set %d tag 0x%Lx: child %d owns the line but child %d is not I"
                          name set_idx ln.tag !owner c)
                    ln.dir
              end)
            ways)
        t.lines);
  t

let fld (ctx : Kernel.ctx) get set v = Mut.field ctx ~get ~set v

(* Address split with the bank-select field skipped: |tag|set|bank|line|. *)
let index t laddr =
  Int64.to_int (Int64.shift_right_logical laddr (Cache_geom.line_bits + t.bank_bits))
  land (t.geom.Cache_geom.sets - 1)

let tag_of t laddr =
  Int64.shift_right_logical laddr (Cache_geom.line_bits + t.bank_bits + t.geom.Cache_geom.set_bits)

let line_addr_of t set_idx (ln : line) =
  Int64.logor
    (Int64.shift_left ln.tag (Cache_geom.line_bits + t.bank_bits + t.geom.Cache_geom.set_bits))
    (Int64.of_int
       ((set_idx lsl (Cache_geom.line_bits + t.bank_bits)) lor (t.bank_id lsl Cache_geom.line_bits)))

let lookup t laddr =
  let ways = t.lines.(index t laddr) in
  let tg = tag_of t laddr in
  let rec go i =
    if i >= Array.length ways then None
    else if ways.(i).valid && ways.(i).tag = tg then Some (i, ways.(i))
    else go (i + 1)
  in
  go 0

let find_mshr t laddr =
  let rec go i =
    if i >= Array.length t.mshrs then None
    else if t.mshrs.(i).valid && t.mshrs.(i).mline = laddr then Some t.mshrs.(i)
    else go (i + 1)
  in
  go 0

let free_mshr t =
  let rec go i =
    if i >= Array.length t.mshrs then None else if not t.mshrs.(i).valid then Some t.mshrs.(i) else go (i + 1)
  in
  go 0

(* Directory compatibility for a grant. An E holder may silently have
   become M, so it blocks shared grants exactly like an M holder. *)
let dir_ok (ln : line) kind =
  match kind with
  | Child { child; want = Msg.M | Msg.E } ->
    Array.for_all Fun.id (Array.mapi (fun i s -> i = child || s = Msg.I) ln.dir)
  | Child { want = Msg.S; _ } | Walker _ -> Array.for_all (fun s -> Msg.state_leq s Msg.S) ln.dir
  | Child { want = Msg.I; _ } -> true

(* Which children must be downgraded, and to what, before [kind] is granted. *)
let downgrades_needed (ln : line) kind =
  match kind with
  | Child { child; want = Msg.M | Msg.E } ->
    List.filter_map
      (fun i -> if i <> child && ln.dir.(i) <> Msg.I then Some (i, Msg.I) else None)
      (List.init (Array.length ln.dir) Fun.id)
  | Child { child; want = Msg.S } ->
    List.filter_map
      (fun i ->
        if i <> child && not (Msg.state_leq ln.dir.(i) Msg.S) then Some (i, Msg.S) else None)
      (List.init (Array.length ln.dir) Fun.id)
  | Walker _ ->
    List.filter_map
      (fun i -> if not (Msg.state_leq ln.dir.(i) Msg.S) then Some (i, Msg.S) else None)
      (List.init (Array.length ln.dir) Fun.id)
  | Child { want = Msg.I; _ } -> []

let do_grant ctx t laddr (ln : line) kind =
  (* Epoch-audit backstop for the declared lookahead: a response stamped
     ready sooner than the declared floor means the epoch engine's window
     bound overstates the latency the hardware model actually enforces —
     exactly the drift [--partition-audit] in epoch mode exists to catch. *)
  if t.declared_min > 0 && Kernel.partition_audit ctx && t.latency < t.declared_min then
    raise
      (Sim.Audit_fail
         (Printf.sprintf "%s: response latency %d below declared epoch lookahead floor %d" t.name
            t.latency t.declared_min));
  let ready = Clock.now t.clk + t.latency in
  Mcheck.Obligation.check ctx t.ob_grant (fun () ->
      if dir_ok ln kind then None
      else
        Some
          (Printf.sprintf "%s: grant for line 0x%Lx with incompatible directory [%s]" t.name laddr
             (String.concat ";" (Array.to_list (Array.map Msg.state_to_string ln.dir)))));
  match kind with
  | Child { child; want } ->
    (* MESI: a shared request with no other sharers is granted
       exclusive-clean, so the child's first store needs no upgrade *)
    let granted =
      if
        t.mesi && want = Msg.S
        && Array.for_all Fun.id (Array.mapi (fun i s -> i = child || s = Msg.I) ln.dir)
      then Msg.E
      else want
    in
    Fifo.enq ctx t.presp_delay
      (ready, child, { Msg.line = laddr; granted; data = Bytes.copy ln.data });
    Mut.set_arr ctx ln.dir child granted
  | Walker { tag; addr } ->
    let off = Cache_geom.offset addr in
    Fifo.enq ctx t.walk_delay (ready, tag, Bytes.get_int64_le ln.data (off land lnot 7))

(* --- steps -------------------------------------------------------------- *)

let step_cresp ctx t =
  let (r : Msg.cresp) = Fifo.deq ctx t.cresp_q in
  match lookup t r.Msg.line with
  | Some (_, ln) ->
    (match r.Msg.data with
    | Some d ->
      Mut.blit ctx ~src:d ~src_pos:0 ~dst:ln.data ~dst_pos:0 ~len:Cache_geom.line_bytes;
      fld ctx (fun () -> ln.dirty) (fun v -> ln.dirty <- v) true
    | None -> ());
    (* the response reports the child's state now; never an upgrade *)
    if Msg.state_leq r.Msg.to_s ln.dir.(r.Msg.child) then Mut.set_arr ctx ln.dir r.Msg.child r.Msg.to_s
  | None ->
    (* stale response for a line we already evicted; carries no data *)
    assert (r.Msg.data = None)

let step_dram_resp ctx t =
  let laddr, data = Dram.resp ctx t.dram in
  match find_mshr t laddr with
  | Some m when m.way >= 0 ->
    let ln = t.lines.(index t laddr).(m.way) in
    Mut.blit ctx ~src:data ~src_pos:0 ~dst:ln.data ~dst_pos:0 ~len:Cache_geom.line_bytes;
    fld ctx (fun () -> ln.tag) (fun v -> ln.tag <- v) (tag_of t laddr);
    fld ctx (fun () -> ln.valid) (fun v -> ln.valid <- v) true;
    fld ctx (fun () -> ln.dirty) (fun v -> ln.dirty <- v) false;
    Array.iteri (fun i _ -> Mut.set_arr ctx ln.dir i Msg.I) ln.dir
  | Some _ | None -> failwith (t.name ^ ": dram resp without mshr/way")

let alloc_mshr ctx t laddr kind =
  match free_mshr t with
  | None -> raise (Kernel.Guard_fail (t.name ^ ": mshrs full"))
  | Some m ->
    fld ctx (fun () -> m.valid) (fun v -> m.valid <- v) true;
    fld ctx (fun () -> m.mline) (fun v -> m.mline <- v) laddr;
    fld ctx (fun () -> m.kind) (fun v -> m.kind <- v) kind;
    fld ctx (fun () -> m.way) (fun v -> m.way <- v) (-1);
    fld ctx (fun () -> m.victim) (fun v -> m.victim <- v) None;
    fld ctx (fun () -> m.fetch_sent) (fun v -> m.fetch_sent <- v) false;
    Array.iteri (fun i _ -> Mut.set_arr ctx m.victim_preq_sent i false) m.victim_preq_sent;
    Array.iteri (fun i _ -> Mut.set_arr ctx m.dg_sent i false) m.dg_sent;
    (match lookup t laddr with
    | Some (w, ln) ->
      fld ctx (fun () -> m.way) (fun v -> m.way <- v) w;
      fld ctx (fun () -> ln.busy) (fun v -> ln.busy <- v) true
    | None -> ());
    Stats.incr ~ctx t.c_miss

(* Fast path: the line is resident, unclaimed and the directory already
   permits the grant. *)
let try_fast ctx t laddr kind =
  match lookup t laddr with
  | Some (_, ln) when (not ln.busy) && dir_ok ln kind && find_mshr t laddr = None ->
    do_grant ctx t laddr ln kind;
    Stats.incr ~ctx t.c_hit;
    true
  | _ -> false

let step_creq ctx t =
  let (r : Msg.creq) = Fifo.first ctx t.creq_q in
  let kind = Child { child = r.Msg.child; want = r.Msg.want } in
  if not (try_fast ctx t r.Msg.line kind) then begin
    Kernel.guard ctx (find_mshr t r.Msg.line = None) "line transaction in flight";
    (match lookup t r.Msg.line with
    | Some (_, ln) -> Kernel.guard ctx (not ln.busy) "line busy"
    | None -> ());
    alloc_mshr ctx t r.Msg.line kind
  end;
  ignore (Fifo.deq ctx t.creq_q)

let step_walk_req ctx t =
  let tag, addr = Fifo.first ctx t.walk_req_q in
  let laddr = Cache_geom.line_addr addr in
  let kind = Walker { tag; addr } in
  if not (try_fast ctx t laddr kind) then begin
    Kernel.guard ctx (find_mshr t laddr = None) "line transaction in flight";
    (match lookup t laddr with
    | Some (_, ln) -> Kernel.guard ctx (not ln.busy) "line busy"
    | None -> ());
    alloc_mshr ctx t laddr kind
  end;
  ignore (Fifo.deq ctx t.walk_req_q)

(* Advance one MSHR's transaction as far as it can go this cycle. Partial
   progress must commit (e.g. a DRAM fetch already sent), so stages end by
   raising [Stop] — caught below, not a transaction abort — instead of a
   failing guard. *)
exception Stop

let step_mshr ctx t (m : mshr) =
  let stop () = raise Stop in
  try
    if not m.valid then stop ();
    let set_idx = index t m.mline in
    if m.way < 0 then begin
      (* acquire a way: a free one, or recall a victim *)
      let ways = t.lines.(set_idx) in
      let n = Array.length ways in
      let rec free i =
        if i >= n then None
        else if (not ways.(i).valid) && not ways.(i).busy then Some i
        else free (i + 1)
      in
      match free 0 with
      | Some w ->
        fld ctx (fun () -> m.way) (fun v -> m.way <- v) w;
        fld ctx (fun () -> ways.(w).busy) (fun v -> ways.(w).busy <- v) true
      | None ->
        (* choose a victim: prefer clean lines with no children *)
        let score i =
          let ln = ways.(i) in
          if ln.busy then -1
          else if Array.for_all (fun s -> s = Msg.I) ln.dir then if ln.dirty then 2 else 3
          else 1
        in
        let best = ref (-1) and best_s = ref 0 in
        for i = 0 to n - 1 do
          let cand = (t.rotor + i) mod n in
          if score cand > !best_s then begin
            best := cand;
            best_s := score cand
          end
        done;
        if !best < 0 then stop ();
        fld ctx (fun () -> t.rotor) (fun v -> t.rotor <- v) (t.rotor + 1);
        let w = !best in
        let ln = ways.(w) in
        fld ctx (fun () -> ln.busy) (fun v -> ln.busy <- v) true;
        fld ctx (fun () -> m.victim) (fun v -> m.victim <- v) (Some (line_addr_of t set_idx ln));
        fld ctx (fun () -> m.way) (fun v -> m.way <- v) w;
        Array.iteri (fun i _ -> Mut.set_arr ctx m.victim_preq_sent i false) m.victim_preq_sent;
        Stats.incr ~ctx t.c_recalls
    end;
    if m.way < 0 then stop ();
    let ln = t.lines.(set_idx).(m.way) in
    (* victim recall in progress? *)
    (match m.victim with
    | Some vaddr ->
      (* demand I from every child still holding the victim *)
      Array.iteri
        (fun i s ->
          if s <> Msg.I && (not m.victim_preq_sent.(i)) && Fifo.can_enq ctx t.preq_o then begin
            Fifo.enq ctx t.preq_o (i, { Msg.line = vaddr; to_s = Msg.I });
            Mut.set_arr ctx m.victim_preq_sent i true
          end)
        ln.dir;
      if not (Array.for_all (fun s -> s = Msg.I) ln.dir) then stop ();
      if ln.dirty then Dram.req_write ctx t.dram vaddr ln.data;
      fld ctx (fun () -> ln.valid) (fun v -> ln.valid <- v) false;
      fld ctx (fun () -> ln.dirty) (fun v -> ln.dirty <- v) false;
      fld ctx (fun () -> m.victim) (fun v -> m.victim <- v) None
    | None -> ());
    (* fetch from DRAM if the line is absent *)
    let present = ln.valid && ln.tag = tag_of t m.mline in
    if not present then begin
      if (not m.fetch_sent)
         && Kernel.attempt ctx (fun ctx -> Dram.req_read ctx t.dram m.mline) <> None
      then fld ctx (fun () -> m.fetch_sent) (fun v -> m.fetch_sent <- v) true;
      stop ()
    end;
    (* downgrade children that block the grant *)
    List.iter
      (fun (child, to_s) ->
        if (not m.dg_sent.(child)) && Fifo.can_enq ctx t.preq_delay then begin
          Fifo.enq ctx t.preq_delay (Clock.now t.clk + t.latency, child, { Msg.line = m.mline; to_s });
          Mut.set_arr ctx m.dg_sent child true
        end)
      (downgrades_needed ln m.kind);
    if not (dir_ok ln m.kind) then stop ();
    if not (Fifo.can_enq ctx t.presp_o) then stop ();
    do_grant ctx t m.mline ln m.kind;
    fld ctx (fun () -> ln.busy) (fun v -> ln.busy <- v) false;
    fld ctx (fun () -> m.valid) (fun v -> m.valid <- v) false
  with Stop -> ()

let step_delays ctx t =
  let rec drain src dst =
    match Kernel.attempt ctx (fun ctx ->
        let ready, a, b = Fifo.first ctx src in
        Kernel.guard ctx (ready <= Clock.now t.clk) "not ready";
        ignore (Fifo.deq ctx src);
        Fifo.enq ctx dst (a, b))
    with
    | Some () -> drain src dst
    | None -> ()
  in
  drain t.presp_delay t.presp_o;
  drain t.preq_delay t.preq_o;
  drain t.walk_delay t.walk_resp_q

let tick t =
  (* Delay queues, the DRAM pipe and the MSHR array are mutated only by this
     rule's own sub-steps, and their time guards ripen by clock advance alone
     — but any such in-flight work keeps the predicate true, so the rule only
     parks when the L2 is completely drained. Then the only possible wakeups
     are enqueues on the three input queues, whose signals we watch. *)
  let can_fire () =
    Fifo.peek_size t.presp_delay > 0
    || Fifo.peek_size t.preq_delay > 0
    || Fifo.peek_size t.walk_delay > 0
    || Fifo.peek_size t.cresp_q > 0
    || Dram.busy t.dram
    || Array.exists (fun (m : mshr) -> m.valid) t.mshrs
    || Fifo.peek_size t.creq_q > 0
    || Fifo.peek_size t.walk_req_q > 0
  in
  let watches = [ Fifo.signal t.cresp_q; Fifo.signal t.creq_q; Fifo.signal t.walk_req_q ] in
  (* Declared partition tokens: the bank side of every child/walker queue,
     plus both sides of the bank-private delay queues and DRAM pipe. When
     the bank runs as its own partition the static checker uses these to
     prove the crossbar (uncore) and the bank never share a primitive. *)
  let touches =
    [
      Fifo.deq_token t.creq_q;
      Fifo.deq_token t.cresp_q;
      Fifo.deq_token t.walk_req_q;
      Fifo.enq_token t.preq_o;
      Fifo.enq_token t.presp_o;
      Fifo.enq_token t.walk_resp_q;
      Fifo.enq_token t.presp_delay;
      Fifo.deq_token t.presp_delay;
      Fifo.enq_token t.preq_delay;
      Fifo.deq_token t.preq_delay;
      Fifo.enq_token t.walk_delay;
      Fifo.deq_token t.walk_delay;
    ]
    @ Dram.tokens t.dram
  in
  (* Tracked footprint: the six boundary queues, the three delay queues and
     the DRAM pending queue. Lines, MSHRs and the rotor are raw [Mut] state
     (invisible to the conflict matrix) private to this rule. *)
  let fp =
    [
      Fifo.fp_first t.creq_q;
      Fifo.fp_deq t.creq_q;
      Fifo.fp_deq t.cresp_q;
      Fifo.fp_can_enq t.preq_o;
      Fifo.fp_enq t.preq_o;
      Fifo.fp_can_enq t.presp_o;
      Fifo.fp_enq t.presp_o;
      Fifo.fp_first t.walk_req_q;
      Fifo.fp_deq t.walk_req_q;
      Fifo.fp_enq t.walk_resp_q;
      Fifo.fp_enq t.presp_delay;
      Fifo.fp_first t.presp_delay;
      Fifo.fp_deq t.presp_delay;
      Fifo.fp_enq t.preq_delay;
      Fifo.fp_first t.preq_delay;
      Fifo.fp_deq t.preq_delay;
      Fifo.fp_enq t.walk_delay;
      Fifo.fp_first t.walk_delay;
      Fifo.fp_deq t.walk_delay;
    ]
    @ Dram.fp_use t.dram
  in
  Rule.make ~can_fire ~watches ~touches ~fp ~vacuous:true (t.name ^ ".tick") (fun ctx ->
      step_delays ctx t;
      (* responses first, unconditionally, all of them *)
      let continue = ref true in
      while !continue do
        match Kernel.attempt ctx (fun ctx -> step_cresp ctx t) with
        | Some () -> ()
        | None -> continue := false
      done;
      let continue = ref true in
      while !continue do
        match Kernel.attempt ctx (fun ctx -> step_dram_resp ctx t) with
        | Some () -> ()
        | None -> continue := false
      done;
      Array.iter (fun m -> ignore (Kernel.attempt ctx (fun ctx -> step_mshr ctx t m))) t.mshrs;
      let _ = Kernel.attempt ctx (fun ctx -> step_creq ctx t) in
      let _ = Kernel.attempt ctx (fun ctx -> step_walk_req ctx t) in
      ())

let rules t = Partition.scoped t.part (fun () -> [ tick t ])

let creq_in t = t.creq_q
let cresp_in t = t.cresp_q
let preq_out t = t.preq_o
let presp_out t = t.presp_o
let fp_walk_req t = [ Fifo.fp_can_enq t.walk_req_q; Fifo.fp_enq t.walk_req_q ]
let fp_walk_resp t = [ Fifo.fp_can_deq t.walk_resp_q; Fifo.fp_deq t.walk_resp_q ]
let walk_req ctx t ~tag addr = Fifo.enq ctx t.walk_req_q (tag, addr)
let can_walk_req ctx t = Fifo.can_enq ctx t.walk_req_q
let walk_resp ctx t = Fifo.deq ctx t.walk_resp_q
let can_walk_resp ctx t = Fifo.can_deq ctx t.walk_resp_q
let walk_resp_ready t = Fifo.peek_size t.walk_resp_q > 0
let walk_resp_signal t = Fifo.signal t.walk_resp_q
