open Cmd

type endpoint = {
  creq : Msg.creq Fifo.t;
  cresp : Msg.cresp Fifo.t;
  preq : Msg.preq Fifo.t;
  presp : Msg.presp Fifo.t;
}

(* Every crossbar rule is a pure queue-to-queue mover: it can only do work
   when some source queue is non-empty, so its [can_fire] is an occupancy
   scan and its watch set is the source queues' signals. (A full destination
   merely makes the guarded enq fail — predicate true, attempt, guard-fail —
   exactly like the seed scheduler.) *)
let rules children ~l2 =
  let child_sigs f = Array.to_list (Array.map f children) in
  (* Declared boundary tokens: the crossbar owns the uncore side of every
     child queue — deq of creq/cresp, enq of preq/presp — mirroring the
     L1 ticks' declarations of the opposite sides. *)
  let child_tks f = Array.to_list (Array.map f children) in
  let up_resp =
    Rule.make "xbar.up.resp"
      ~can_fire:(fun () -> Array.exists (fun ep -> Fifo.peek_size ep.cresp > 0) children)
      ~watches:(child_sigs (fun ep -> Fifo.signal ep.cresp))
      ~touches:(child_tks (fun ep -> Fifo.deq_token ep.cresp))
      ~vacuous:true
      (fun ctx ->
        Array.iter
          (fun ep ->
            ignore
              (Kernel.attempt ctx (fun ctx -> Fifo.enq ctx (L2_cache.cresp_in l2) (Fifo.deq ctx ep.cresp))))
          children)
  in
  let up_req =
    Rule.make "xbar.up.req"
      ~can_fire:(fun () -> Array.exists (fun ep -> Fifo.peek_size ep.creq > 0) children)
      ~watches:(child_sigs (fun ep -> Fifo.signal ep.creq))
      ~touches:(child_tks (fun ep -> Fifo.deq_token ep.creq))
      ~vacuous:true
      (fun ctx ->
        Array.iter
          (fun ep ->
            ignore
              (Kernel.attempt ctx (fun ctx -> Fifo.enq ctx (L2_cache.creq_in l2) (Fifo.deq ctx ep.creq))))
          children)
  in
  let down_resp =
    Rule.make "xbar.down.resp"
      ~can_fire:(fun () -> Fifo.peek_size (L2_cache.presp_out l2) > 0)
      ~watches:[ Fifo.signal (L2_cache.presp_out l2) ]
      ~touches:(child_tks (fun ep -> Fifo.enq_token ep.presp))
      ~vacuous:true
      (fun ctx ->
        (* drain as many grants as the destinations accept this cycle *)
        let continue = ref true in
        while !continue do
          match
            Kernel.attempt ctx (fun ctx ->
                let child, (g : Msg.presp) = Fifo.deq ctx (L2_cache.presp_out l2) in
                Fifo.enq ctx children.(child).presp g)
          with
          | Some () -> ()
          | None -> continue := false
        done)
  in
  let down_req =
    Rule.make "xbar.down.req"
      ~can_fire:(fun () -> Fifo.peek_size (L2_cache.preq_out l2) > 0)
      ~watches:[ Fifo.signal (L2_cache.preq_out l2) ]
      ~touches:(child_tks (fun ep -> Fifo.enq_token ep.preq))
      ~vacuous:true
      (fun ctx ->
        let continue = ref true in
        while !continue do
          match
            Kernel.attempt ctx (fun ctx ->
                let child, (d : Msg.preq) = Fifo.deq ctx (L2_cache.preq_out l2) in
                Fifo.enq ctx children.(child).preq d)
          with
          | Some () -> ()
          | None -> continue := false
        done)
  in
  [ up_resp; down_resp; up_req; down_req ]
