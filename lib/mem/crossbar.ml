open Cmd

type endpoint = {
  creq : Msg.creq Fifo.t;
  cresp : Msg.cresp Fifo.t;
  preq : Msg.preq Fifo.t;
  presp : Msg.presp Fifo.t;
}

(* Every crossbar rule is a pure queue-to-queue mover: it can only do work
   when some source queue is non-empty, so its [can_fire] is an occupancy
   scan and its watch set is the source queues' signals. (A full destination
   merely makes the guarded enq fail — predicate true, attempt, guard-fail —
   exactly like the seed scheduler.)

   With a banked L2 the crossbar is also the bank demux: upbound messages
   route by [bank_of] on their line address, downbound rules drain every
   bank's output queue into the per-child queues. Message order per
   (child, line) is preserved — a line maps to exactly one bank. *)
let rules children ~banks ~bank_of =
  let child_sigs f = Array.to_list (Array.map f children) in
  (* Declared boundary tokens: the crossbar owns the uncore side of every
     child queue — deq of creq/cresp, enq of preq/presp — mirroring the
     L1 ticks' declarations of the opposite sides; likewise the uncore side
     of every bank queue, mirroring the bank ticks'. *)
  let child_tks f = Array.to_list (Array.map f children) in
  let bank_tks f = Array.to_list (Array.map f banks) in
  (* Footprints: pure movers touch only their source/destination queues.
     Every sub-step checks the destination's [can_enq] (and peeks the source
     with [first]) before dequeuing, so a cf-FIFO guard can only fail before
     any tracked write — the rules are abort-free and declared [~total]. *)
  let child_fps f = List.concat_map f (Array.to_list children) in
  let bank_fps f = List.concat_map f (Array.to_list banks) in
  let up_resp =
    Rule.make "xbar.up.resp"
      ~can_fire:(fun () -> Array.exists (fun ep -> Fifo.peek_size ep.cresp > 0) children)
      ~watches:(child_sigs (fun ep -> Fifo.signal ep.cresp))
      ~touches:
        (child_tks (fun ep -> Fifo.deq_token ep.cresp)
        @ bank_tks (fun l2 -> Fifo.enq_token (L2_cache.cresp_in l2)))
      ~fp:
        (child_fps (fun ep -> [ Fifo.fp_first ep.cresp; Fifo.fp_deq ep.cresp ])
        @ bank_fps (fun l2 ->
              [ Fifo.fp_can_enq (L2_cache.cresp_in l2); Fifo.fp_enq (L2_cache.cresp_in l2) ]))
      ~total:true ~vacuous:true
      (fun ctx ->
        Array.iter
          (fun ep ->
            ignore
              (Kernel.attempt ctx (fun ctx ->
                   let (r : Msg.cresp) = Fifo.first ctx ep.cresp in
                   let dst = L2_cache.cresp_in banks.(bank_of r.Msg.line) in
                   Kernel.guard ctx (Fifo.can_enq ctx dst) "dst full";
                   ignore (Fifo.deq ctx ep.cresp);
                   Fifo.enq ctx dst r)))
          children)
  in
  let up_req =
    Rule.make "xbar.up.req"
      ~can_fire:(fun () -> Array.exists (fun ep -> Fifo.peek_size ep.creq > 0) children)
      ~watches:(child_sigs (fun ep -> Fifo.signal ep.creq))
      ~touches:
        (child_tks (fun ep -> Fifo.deq_token ep.creq)
        @ bank_tks (fun l2 -> Fifo.enq_token (L2_cache.creq_in l2)))
      ~fp:
        (child_fps (fun ep -> [ Fifo.fp_first ep.creq; Fifo.fp_deq ep.creq ])
        @ bank_fps (fun l2 ->
              [ Fifo.fp_can_enq (L2_cache.creq_in l2); Fifo.fp_enq (L2_cache.creq_in l2) ]))
      ~total:true ~vacuous:true
      (fun ctx ->
        Array.iter
          (fun ep ->
            ignore
              (Kernel.attempt ctx (fun ctx ->
                   let (r : Msg.creq) = Fifo.first ctx ep.creq in
                   let dst = L2_cache.creq_in banks.(bank_of r.Msg.line) in
                   Kernel.guard ctx (Fifo.can_enq ctx dst) "dst full";
                   ignore (Fifo.deq ctx ep.creq);
                   Fifo.enq ctx dst r)))
          children)
  in
  let bank_sigs f = Array.to_list (Array.map f banks) in
  let down_resp =
    Rule.make "xbar.down.resp"
      ~can_fire:(fun () ->
        Array.exists (fun l2 -> Fifo.peek_size (L2_cache.presp_out l2) > 0) banks)
      ~watches:(bank_sigs (fun l2 -> Fifo.signal (L2_cache.presp_out l2)))
      ~touches:
        (child_tks (fun ep -> Fifo.enq_token ep.presp)
        @ bank_tks (fun l2 -> Fifo.deq_token (L2_cache.presp_out l2)))
      ~fp:
        (bank_fps (fun l2 ->
             [ Fifo.fp_first (L2_cache.presp_out l2); Fifo.fp_deq (L2_cache.presp_out l2) ])
        @ child_fps (fun ep -> [ Fifo.fp_can_enq ep.presp; Fifo.fp_enq ep.presp ]))
      ~total:true ~vacuous:true
      (fun ctx ->
        (* drain as many grants as the destinations accept this cycle *)
        Array.iter
          (fun l2 ->
            let continue = ref true in
            while !continue do
              match
                Kernel.attempt ctx (fun ctx ->
                    let child, (g : Msg.presp) = Fifo.first ctx (L2_cache.presp_out l2) in
                    Kernel.guard ctx (Fifo.can_enq ctx children.(child).presp) "dst full";
                    ignore (Fifo.deq ctx (L2_cache.presp_out l2));
                    Fifo.enq ctx children.(child).presp g)
              with
              | Some () -> ()
              | None -> continue := false
            done)
          banks)
  in
  let down_req =
    Rule.make "xbar.down.req"
      ~can_fire:(fun () ->
        Array.exists (fun l2 -> Fifo.peek_size (L2_cache.preq_out l2) > 0) banks)
      ~watches:(bank_sigs (fun l2 -> Fifo.signal (L2_cache.preq_out l2)))
      ~touches:
        (child_tks (fun ep -> Fifo.enq_token ep.preq)
        @ bank_tks (fun l2 -> Fifo.deq_token (L2_cache.preq_out l2)))
      ~fp:
        (bank_fps (fun l2 ->
             [ Fifo.fp_first (L2_cache.preq_out l2); Fifo.fp_deq (L2_cache.preq_out l2) ])
        @ child_fps (fun ep -> [ Fifo.fp_can_enq ep.preq; Fifo.fp_enq ep.preq ]))
      ~total:true ~vacuous:true
      (fun ctx ->
        Array.iter
          (fun l2 ->
            let continue = ref true in
            while !continue do
              match
                Kernel.attempt ctx (fun ctx ->
                    let child, (d : Msg.preq) = Fifo.first ctx (L2_cache.preq_out l2) in
                    Kernel.guard ctx (Fifo.can_enq ctx children.(child).preq) "dst full";
                    ignore (Fifo.deq ctx (L2_cache.preq_out l2));
                    Fifo.enq ctx children.(child).preq d)
              with
              | Some () -> ()
              | None -> continue := false
            done)
          banks)
  in
  [ up_resp; down_resp; up_req; down_req ]
