open Cmd

type waiter =
  | WLd of { tag : int; addr : int64; bytes : int; unsigned : bool }
  | WSt of { tag : int }
  | WAt of { tag : int; addr : int64; bytes : int; f : int64 -> int64 option * int64 }
  | WPf (* prefetch: bringing the line in M was the whole job *)

type req =
  | Ld of { tag : int; addr : int64; bytes : int; unsigned : bool }
  | St of { tag : int; line : int64 }
  | At of { tag : int; addr : int64; bytes : int; f : int64 -> int64 option * int64 }
  | Pf of { line : int64 }  (* store prefetch: acquire M, respond to no one *)

type line = {
  mutable tag : int64;
  mutable st : Msg.state;
  data : Bytes.t;
  mutable locked : bool;
  mutable pending : bool; (* way reserved by an MSHR awaiting its grant *)
}

type mshr = {
  mutable valid : bool;
  mutable mline : int64;
  mutable way : int;
  mutable want : Msg.state;
  mutable filled : bool;
  mutable waiters : waiter list; (* oldest first *)
}

type t = {
  name : string;
  geom : Cache_geom.t;
  lines : line array array;
  mshrs : mshr array;
  req_q : req Fifo.t;
  resp_ld_q : (int * int64) Fifo.t;
  resp_st_q : int Fifo.t;
  resp_at_q : (int * int64) Fifo.t;
  creq_o : Msg.creq Fifo.t;
  cresp_o : Msg.cresp Fifo.t;
  preq_i : Msg.preq Fifo.t;
  presp_i : Msg.presp Fifo.t;
  child_id : int;
  part : int; (* partition this cache was built in (its core's) *)
  mutable evict_hook : Kernel.ctx -> int64 -> unit;
  mutable rotor : int;
  c_hit : Stats.counter;
  c_miss : Stats.counter;
  c_wb : Stats.counter;
}

let create ?(name = "l1d") ?boundary_lookahead clk ~child_id ~geom ~mshrs ~stats () =
  let mk_line () =
    { tag = -1L; st = Msg.I; data = Bytes.make Cache_geom.line_bytes '\000'; locked = false; pending = false }
  in
  let mk_mshr () = { valid = false; mline = 0L; way = 0; want = Msg.I; filled = false; waiters = [] } in
  let t =
  {
    name;
    geom;
    lines = Array.init geom.Cache_geom.sets (fun _ -> Array.init geom.Cache_geom.ways (fun _ -> mk_line ()));
    mshrs = Array.init mshrs (fun _ -> mk_mshr ());
    req_q = Fifo.cf ~name:(name ^ ".req") clk ~capacity:4 ();
    resp_ld_q = Fifo.cf ~name:(name ^ ".respLd") clk ~capacity:8 ();
    resp_st_q = Fifo.cf ~name:(name ^ ".respSt") clk ~capacity:2 ();
    resp_at_q = Fifo.cf ~name:(name ^ ".respAt") clk ~capacity:2 ();
    (* The four crossbar-facing queues straddle the core/uncore partition
       boundary; [boundary_lookahead] declares their epoch lookahead. *)
    creq_o = Fifo.cf ~name:(name ^ ".creq") ?lookahead:boundary_lookahead clk ~capacity:4 ();
    cresp_o = Fifo.cf ~name:(name ^ ".cresp") ?lookahead:boundary_lookahead clk ~capacity:4 ();
    preq_i = Fifo.cf ~name:(name ^ ".preq") ?lookahead:boundary_lookahead clk ~capacity:4 ();
    presp_i = Fifo.cf ~name:(name ^ ".presp") ?lookahead:boundary_lookahead clk ~capacity:4 ();
    child_id;
    part = Partition.ambient ();
    evict_hook = (fun _ _ -> ());
    rotor = 0;
    c_hit = Stats.counter stats (name ^ ".hits");
    c_miss = Stats.counter stats (name ^ ".misses");
    c_wb = Stats.counter stats (name ^ ".writebacks");
  }
  in
  (* MSHR waiter lists carry atomic-op closures (WAt) — the reason the
     snapshot codec marshals with [Closures]. The FIFOs are EHR-backed and
     register themselves; [evict_hook] is wiring, not state. *)
  State.field ~name:(name ^ ".arrays")
    (fun () -> (t.lines, t.mshrs, t.rotor))
    (fun (lines, mshrs, rotor) ->
      Array.iteri (fun s ways -> Array.blit ways 0 t.lines.(s) 0 (Array.length ways)) lines;
      Array.blit mshrs 0 t.mshrs 0 (Array.length t.mshrs);
      t.rotor <- rotor);
  t

(* --- helpers ----------------------------------------------------------- *)

let set_of t line = Cache_geom.index t.geom line
let tag_of t line = Cache_geom.tag t.geom line

let lookup t laddr =
  let ways = t.lines.(set_of t laddr) in
  let tg = tag_of t laddr in
  let rec go i =
    if i >= Array.length ways then None
    else if ways.(i).tag = tg && (ways.(i).st <> Msg.I || ways.(i).pending) then Some (i, ways.(i))
    else go (i + 1)
  in
  go 0

let find_mshr t laddr =
  let rec go i =
    if i >= Array.length t.mshrs then None
    else if t.mshrs.(i).valid && t.mshrs.(i).mline = laddr then Some t.mshrs.(i)
    else go (i + 1)
  in
  go 0

let free_mshr t =
  let rec go i =
    if i >= Array.length t.mshrs then None else if not t.mshrs.(i).valid then Some t.mshrs.(i) else go (i + 1)
  in
  go 0

let read_val ln addr bytes unsigned =
  let off = Cache_geom.offset addr in
  let v = ref 0L in
  for k = bytes - 1 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get ln.data (off + k))))
  done;
  if unsigned then !v else Isa.Xlen.sext ~bits:(bytes * 8) !v

let write_val ctx ln addr bytes v =
  let off = Cache_geom.offset addr in
  let src = Bytes.create bytes in
  for k = 0 to bytes - 1 do
    Bytes.set src k (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xFF))
  done;
  Mut.blit ctx ~src ~src_pos:0 ~dst:ln.data ~dst_pos:off ~len:bytes

let fld (ctx : Kernel.ctx) get set v = Mut.field ctx ~get ~set v

(* MESI: an exclusive-clean line may be written without asking the parent *)
let writable ctx ln =
  if ln.st = Msg.E then fld ctx (fun () -> ln.st) (fun v -> ln.st <- v) Msg.M;
  ln.st = Msg.M

(* Evict [ln] (state S or M): emit the voluntary downgrade and fire the
   eviction hook. The caller reuses the way afterwards. *)
let evict ctx t set_idx ln =
  let laddr =
    Int64.logor
      (Int64.shift_left ln.tag (Cache_geom.line_bits + t.geom.Cache_geom.set_bits))
      (Int64.of_int (set_idx lsl Cache_geom.line_bits))
  in
  (match ln.st with
  | Msg.M ->
    Fifo.enq ctx t.cresp_o
      { Msg.child = t.child_id; line = laddr; to_s = Msg.I; data = Some (Bytes.copy ln.data) };
    Stats.incr ~ctx t.c_wb
  | Msg.S | Msg.E ->
    Fifo.enq ctx t.cresp_o { Msg.child = t.child_id; line = laddr; to_s = Msg.I; data = None }
  | Msg.I -> ());
  if ln.st <> Msg.I then t.evict_hook ctx laddr;
  fld ctx (fun () -> ln.st) (fun s -> ln.st <- s) Msg.I;
  fld ctx (fun () -> ln.tag) (fun s -> ln.tag <- s) (-1L)

(* Choose a victim way in [set]: invalid first, else rotate among ways that
   are not pending and not locked. Guard-fails if none is available. *)
let victim ctx t set_idx =
  let ways = t.lines.(set_idx) in
  let n = Array.length ways in
  let rec find_invalid i =
    if i >= n then None
    else if ways.(i).st = Msg.I && not ways.(i).pending then Some i
    else find_invalid (i + 1)
  in
  match find_invalid 0 with
  | Some i -> i
  | None ->
    (* a way still referenced by a valid MSHR (filling or draining) is off
       limits: its waiters would read freed storage *)
    let in_mshr i =
      Array.exists
        (fun m -> m.valid && set_of t m.mline = set_idx && m.way = i)
        t.mshrs
    in
    let rec rot k =
      if k >= n then None
      else
        let i = (t.rotor + k) mod n in
        if (not ways.(i).pending) && (not ways.(i).locked) && not (in_mshr i) then Some i
        else rot (k + 1)
    in
    (match rot 0 with
    | Some i ->
      fld ctx (fun () -> t.rotor) (fun v -> t.rotor <- v) ((t.rotor + 1) mod n);
      evict ctx t set_idx ways.(i);
      i
    | None -> raise (Kernel.Guard_fail (t.name ^ ": no victim way")))

let alloc_mshr ctx t laddr want first_waiter =
  match free_mshr t with
  | None -> raise (Kernel.Guard_fail (t.name ^ ": mshrs full"))
  | Some m ->
    let set_idx = set_of t laddr in
    (* S->M upgrade keeps the way it already owns *)
    let way =
      match lookup t laddr with
      | Some (w, ln) when ln.st = Msg.S -> w
      | Some _ | None -> victim ctx t set_idx
    in
    let ln = t.lines.(set_idx).(way) in
    fld ctx (fun () -> ln.tag) (fun v -> ln.tag <- v) (tag_of t laddr);
    fld ctx (fun () -> ln.pending) (fun v -> ln.pending <- v) true;
    Fifo.enq ctx t.creq_o { Msg.child = t.child_id; line = laddr; want };
    fld ctx (fun () -> m.valid) (fun v -> m.valid <- v) true;
    fld ctx (fun () -> m.mline) (fun v -> m.mline <- v) laddr;
    fld ctx (fun () -> m.way) (fun v -> m.way <- v) way;
    fld ctx (fun () -> m.want) (fun v -> m.want <- v) want;
    fld ctx (fun () -> m.filled) (fun v -> m.filled <- v) false;
    fld ctx (fun () -> m.waiters) (fun v -> m.waiters <- v) [ first_waiter ];
    Stats.incr ~ctx t.c_miss

(* --- internal rule steps ----------------------------------------------- *)

let step_presp ctx t =
  let (g : Msg.presp) = Fifo.deq ctx t.presp_i in
  match find_mshr t g.Msg.line with
  | None -> failwith (t.name ^ ": grant without mshr")
  | Some m ->
    let ln = t.lines.(set_of t g.Msg.line).(m.way) in
    Mut.blit ctx ~src:g.Msg.data ~src_pos:0 ~dst:ln.data ~dst_pos:0 ~len:Cache_geom.line_bytes;
    fld ctx (fun () -> ln.st) (fun v -> ln.st <- v) g.Msg.granted;
    fld ctx (fun () -> ln.pending) (fun v -> ln.pending <- v) false;
    fld ctx (fun () -> m.filled) (fun v -> m.filled <- v) true

let step_drain ctx t m =
  Kernel.guard ctx (m.valid && m.filled) "mshr not draining";
  let ln = t.lines.(set_of t m.mline).(m.way) in
  let rec drain ws =
    match ws with
    | [] -> []
    | WLd { tag; addr; bytes; unsigned } :: rest ->
      if Fifo.can_enq ctx t.resp_ld_q then begin
        Fifo.enq ctx t.resp_ld_q (tag, read_val ln addr bytes unsigned);
        drain rest
      end
      else ws
    | WSt { tag } :: rest ->
      if (not ln.locked) && Msg.state_leq Msg.E ln.st && writable ctx ln
         && Fifo.can_enq ctx t.resp_st_q
      then begin
        fld ctx (fun () -> ln.locked) (fun v -> ln.locked <- v) true;
        Fifo.enq ctx t.resp_st_q tag;
        drain rest
      end
      else ws
    | WPf :: rest -> drain rest
    | WAt { tag; addr; bytes; f } :: rest ->
      if (not ln.locked) && Msg.state_leq Msg.E ln.st && writable ctx ln
         && Fifo.can_enq ctx t.resp_at_q
      then begin
        let old = read_val ln addr bytes false in
        let stv, result = f old in
        (match stv with Some v -> write_val ctx ln addr bytes v | None -> ());
        Fifo.enq ctx t.resp_at_q (tag, result);
        drain rest
      end
      else ws
  in
  let before = m.waiters in
  let after = drain before in
  Kernel.guard ctx (after != before) "no waiter progress";
  fld ctx (fun () -> m.waiters) (fun v -> m.waiters <- v) after;
  if after = [] then fld ctx (fun () -> m.valid) (fun v -> m.valid <- v) false

let step_preq ctx t =
  let (d : Msg.preq) = Fifo.first ctx t.preq_i in
  let respond st data =
    Fifo.enq ctx t.cresp_o { Msg.child = t.child_id; line = d.Msg.line; to_s = st; data }
  in
  (match lookup t d.Msg.line with
  | Some (_, ln) ->
    Kernel.guard ctx (not ln.locked) "line locked";
    (* stall while an MSHR is draining waiters against this line; grants
       always beat later downgrades (presp drains unconditionally), so a
       filled MSHR means the demand postdates our grant *)
    (match find_mshr t d.Msg.line with
    | Some m when m.filled -> raise (Kernel.Guard_fail "draining; retry downgrade")
    | Some _ | None -> ());
    if Msg.state_leq ln.st d.Msg.to_s then respond ln.st None
    else begin
      let data = if ln.st = Msg.M then Some (Bytes.copy ln.data) else None in
      respond d.Msg.to_s data;
      if d.Msg.to_s = Msg.I then t.evict_hook ctx d.Msg.line;
      fld ctx (fun () -> ln.st) (fun v -> ln.st <- v) d.Msg.to_s;
      (* keep the tag when the way is reserved for a pending fill *)
      if d.Msg.to_s = Msg.I && not ln.pending then
        fld ctx (fun () -> ln.tag) (fun v -> ln.tag <- v) (-1L)
    end
  | None -> respond Msg.I None);
  ignore (Fifo.deq ctx t.preq_i)

let step_req ctx t =
  let r = Fifo.first ctx t.req_q in
  (match r with
  | Ld { tag; addr; bytes; unsigned } -> (
    let laddr = Cache_geom.line_addr addr in
    match lookup t laddr with
    | Some (_, ln) when Msg.state_leq Msg.S ln.st && not ln.pending ->
      Fifo.enq ctx t.resp_ld_q (tag, read_val ln addr bytes unsigned);
      Stats.incr ~ctx t.c_hit
    | _ -> (
      match find_mshr t laddr with
      | Some m when not m.filled ->
        fld ctx (fun () -> m.waiters) (fun v -> m.waiters <- v)
          (m.waiters @ [ WLd { tag; addr; bytes; unsigned } ])
      | Some _ -> raise (Kernel.Guard_fail "mshr draining; retry")
      | None -> alloc_mshr ctx t laddr Msg.S (WLd { tag; addr; bytes; unsigned })))
  | St { tag; line = laddr } -> (
    match lookup t laddr with
    | Some (_, ln) when (not ln.pending) && Msg.state_leq Msg.E ln.st && writable ctx ln ->
      Kernel.guard ctx (not ln.locked) "line locked";
      fld ctx (fun () -> ln.locked) (fun v -> ln.locked <- v) true;
      Fifo.enq ctx t.resp_st_q tag;
      Stats.incr ~ctx t.c_hit
    | _ -> (
      match find_mshr t laddr with
      | Some m when (not m.filled) && m.want = Msg.M ->
        fld ctx (fun () -> m.waiters) (fun v -> m.waiters <- v) (m.waiters @ [ WSt { tag } ])
      | Some _ -> raise (Kernel.Guard_fail "incompatible mshr; retry")
      | None -> alloc_mshr ctx t laddr Msg.M (WSt { tag })))
  | At { tag; addr; bytes; f } -> (
    let laddr = Cache_geom.line_addr addr in
    match lookup t laddr with
    | Some (_, ln) when (not ln.pending) && Msg.state_leq Msg.E ln.st && writable ctx ln ->
      Kernel.guard ctx (not ln.locked) "line locked";
      let old = read_val ln addr bytes false in
      let stv, result = f old in
      (match stv with Some v -> write_val ctx ln addr bytes v | None -> ());
      Fifo.enq ctx t.resp_at_q (tag, result);
      Stats.incr ~ctx t.c_hit
    | _ -> (
      match find_mshr t laddr with
      | Some m when (not m.filled) && m.want = Msg.M ->
        fld ctx (fun () -> m.waiters) (fun v -> m.waiters <- v)
          (m.waiters @ [ WAt { tag; addr; bytes; f } ])
      | Some _ -> raise (Kernel.Guard_fail "incompatible mshr; retry")
      | None -> alloc_mshr ctx t laddr Msg.M (WAt { tag; addr; bytes; f })))
  | Pf { line = laddr } -> (
    match lookup t laddr with
    | Some (_, ln) when Msg.state_leq Msg.E ln.st && not ln.pending -> () (* already exclusive *)
    | _ -> (
      match find_mshr t laddr with
      | Some _ -> () (* a real request is already in flight *)
      | None ->
        (* best effort: if no way or MSHR is free, the hint is dropped *)
        ignore (Kernel.attempt ctx (fun ctx -> alloc_mshr ctx t laddr Msg.M WPf)))));
  ignore (Fifo.deq ctx t.req_q)

let tick t =
  (* Work only ever arrives on the three input queues or sits in a filled
     MSHR; MSHR state is mutated exclusively by this rule's own sub-steps,
     so parking on the input-queue signals cannot miss a wakeup. (A drain
     stalled on a core-held line lock keeps [m.filled] set, which keeps the
     predicate true — no parking in that state.) *)
  let can_fire () =
    Fifo.peek_size t.presp_i > 0
    || Fifo.peek_size t.preq_i > 0
    || Fifo.peek_size t.req_q > 0
    || Array.exists (fun m -> m.valid && m.filled) t.mshrs
  in
  let watches = [ Fifo.signal t.presp_i; Fifo.signal t.preq_i; Fifo.signal t.req_q ] in
  (* Declared boundary: the four child-side queues shared with the crossbar
     (this cache drives creq/cresp enq and preq/presp deq; the crossbar
     drives the opposite sides). Everything else the tick touches is
     core-private. *)
  let touches =
    [
      Fifo.enq_token t.creq_o;
      Fifo.enq_token t.cresp_o;
      Fifo.deq_token t.preq_i;
      Fifo.deq_token t.presp_i;
    ]
  in
  (* Tracked footprint: the core-side request/response queues plus the four
     crossbar-side queues. Lines, MSHRs and the rotor are raw [Mut] state
     private to this rule. *)
  let fp =
    [
      Fifo.fp_first t.req_q;
      Fifo.fp_deq t.req_q;
      Fifo.fp_can_enq t.resp_ld_q;
      Fifo.fp_enq t.resp_ld_q;
      Fifo.fp_can_enq t.resp_st_q;
      Fifo.fp_enq t.resp_st_q;
      Fifo.fp_can_enq t.resp_at_q;
      Fifo.fp_enq t.resp_at_q;
      Fifo.fp_enq t.creq_o;
      Fifo.fp_enq t.cresp_o;
      Fifo.fp_first t.preq_i;
      Fifo.fp_deq t.preq_i;
      Fifo.fp_deq t.presp_i;
    ]
  in
  Rule.make ~can_fire ~watches ~touches ~fp ~vacuous:true (t.name ^ ".tick") (fun ctx ->
      let _ = Kernel.attempt ctx (fun ctx -> step_presp ctx t) in
      Array.iter (fun m -> ignore (Kernel.attempt ctx (fun ctx -> step_drain ctx t m))) t.mshrs;
      let _ = Kernel.attempt ctx (fun ctx -> step_preq ctx t) in
      let _ = Kernel.attempt ctx (fun ctx -> step_req ctx t) in
      ())

let rules t = Partition.scoped t.part (fun () -> [ tick t ])

(* --- interface methods -------------------------------------------------- *)

let req ctx t r = Fifo.enq ctx t.req_q r
let can_req ctx t = Fifo.can_enq ctx t.req_q
let resp_ld ctx t = Fifo.deq ctx t.resp_ld_q
let can_resp_ld ctx t = Fifo.can_deq ctx t.resp_ld_q
let resp_st ctx t = Fifo.deq ctx t.resp_st_q
let can_resp_st ctx t = Fifo.can_deq ctx t.resp_st_q
let resp_at ctx t = Fifo.deq ctx t.resp_at_q
let can_resp_at ctx t = Fifo.can_deq ctx t.resp_at_q

(* footprint atoms for the core rules calling the methods above; [write_data]
   mutates only raw line state and needs no atoms *)
let fp_req t = [ Fifo.fp_can_enq t.req_q; Fifo.fp_enq t.req_q ]
let fp_resp_ld t = [ Fifo.fp_can_deq t.resp_ld_q; Fifo.fp_deq t.resp_ld_q ]
let fp_resp_st t = [ Fifo.fp_can_deq t.resp_st_q; Fifo.fp_deq t.resp_st_q ]
let fp_resp_at t = [ Fifo.fp_can_deq t.resp_at_q; Fifo.fp_deq t.resp_at_q ]

(* untracked response-availability probes + signals, for core-rule can_fire *)
let resp_ld_ready t = Fifo.peek_size t.resp_ld_q > 0
let resp_st_ready t = Fifo.peek_size t.resp_st_q > 0
let resp_at_ready t = Fifo.peek_size t.resp_at_q > 0
let resp_ld_signal t = Fifo.signal t.resp_ld_q
let resp_st_signal t = Fifo.signal t.resp_st_q
let resp_at_signal t = Fifo.signal t.resp_at_q

let write_data ctx t ~line ~data ~mask =
  match lookup t line with
  | Some (_, ln) when ln.st = Msg.M && ln.locked ->
    let old = Bytes.copy ln.data in
    Kernel.on_abort ctx (fun () -> Bytes.blit old 0 ln.data 0 Cache_geom.line_bytes);
    for i = 0 to Cache_geom.line_bytes - 1 do
      if Int64.logand (Int64.shift_right_logical mask i) 1L = 1L then
        Bytes.set ln.data i (Bytes.get data i)
    done;
    fld ctx (fun () -> ln.locked) (fun v -> ln.locked <- v) false
  | _ -> failwith (t.name ^ ": write_data without locked M line")

let set_evict_hook t f = t.evict_hook <- f

let creq_out t = t.creq_o
let cresp_out t = t.cresp_o
let preq_in t = t.preq_i
let presp_in t = t.presp_i

let peek_state t addr =
  match lookup t (Cache_geom.line_addr addr) with
  | Some (_, ln) when not ln.pending -> ln.st
  | _ -> Msg.I
