(** Shared, inclusive, non-blocking L2 cache: the MSI directory parent
    (paper, Section V-D and Fig. 11).

    Serves upgrade requests from [nchildren] L1 caches, tracking each child's
    state per line in a directory; demands downgrades when a grant requires
    them; recalls children and writes back dirty lines on its own evictions
    (inclusive); and fetches from {!Dram} on misses. A separate read port
    serves the L2 TLB's hardware page walks — those reads are coherent: any
    child holding the line in M is downgraded to S first.

    Channel discipline (deadlock/ordering argument): response channels
    (child→parent [cresp], parent→child [presp]) are processed
    unconditionally every cycle, so they are never blocked behind requests;
    grants therefore always beat later downgrade demands, and voluntary
    evictions always beat later re-requests. *)

type t

(** [?bank:(id, bits)] makes this instance one bank of a line-address-
    interleaved L2: it serves exactly the lines whose [bits]-wide field just
    above the line offset equals [id], and its set index and tag skip that
    field so the full set array stays usable. The default [(0, 0)] is the
    unbanked L2. Each bank owns its own {!Dram} channel and may be built
    inside its own partition, in which case the tick rule's declared tokens
    let the static partition checker prove bank isolation.

    [?in_lookahead] declares the epoch lookahead ({!Cmd.Fifo.cf}) on the six
    child/walker-facing queues; [?declared_min] is the response-latency
    floor the surrounding design derived that declaration from (minus any
    slack attributed to other stages) — when the partition audit runs, a
    grant stamped faster than the floor raises [Cmd.Sim.Audit_fail]. *)
val create :
  ?name:string ->
  ?bank:int * int ->
  ?declared_min:int ->
  ?in_lookahead:int ->
  Cmd.Clock.t ->
  nchildren:int ->
  geom:Cache_geom.t ->
  mshrs:int ->
  ?latency:int ->
  ?mesi:bool ->
  dram:Dram.t ->
  stats:Cmd.Stats.t ->
  unit ->
  t

(** Child-side channels, to be connected by {!Crossbar}. *)
val creq_in : t -> Msg.creq Cmd.Fifo.t

val cresp_in : t -> Msg.cresp Cmd.Fifo.t

(** Outbound messages carry the destination child. *)
val preq_out : t -> (int * Msg.preq) Cmd.Fifo.t

val presp_out : t -> (int * Msg.presp) Cmd.Fifo.t

(** {2 Page-walker port (coherent 8-byte reads)} *)

val walk_req : Cmd.Kernel.ctx -> t -> tag:int -> int64 -> unit
val can_walk_req : Cmd.Kernel.ctx -> t -> bool
val walk_resp : Cmd.Kernel.ctx -> t -> int * int64
val can_walk_resp : Cmd.Kernel.ctx -> t -> bool

(** Footprint atoms ([Rule.make ~fp]) for rules calling the walker port:
    {!fp_walk_req} covers [can_walk_req]/[walk_req], {!fp_walk_resp} covers
    [can_walk_resp]/[walk_resp]. *)
val fp_walk_req : t -> Cmd.Conflict.atom list

val fp_walk_resp : t -> Cmd.Conflict.atom list

(** Untracked walk-response availability + its wakeup signal, for the walk
    crossbar's [can_fire]. *)
val walk_resp_ready : t -> bool

val walk_resp_signal : t -> Cmd.Wakeup.signal

val rules : t -> Cmd.Rule.t list
