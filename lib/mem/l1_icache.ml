open Cmd

type line = { mutable tag : int64; mutable st : Msg.state; data : Bytes.t; mutable pending : bool }

type t = {
  name : string;
  geom : Cache_geom.t;
  fetch_width : int;
  lines : line array array;
  req_q : (int * int64) Fifo.t;
  resp_q : (int * int64 * int array) Fifo.t;
  creq_o : Msg.creq Fifo.t;
  cresp_o : Msg.cresp Fifo.t;
  preq_i : Msg.preq Fifo.t;
  presp_i : Msg.presp Fifo.t;
  child_id : int;
  part : int; (* partition this cache was built in (its core's) *)
  (* single blocking miss *)
  mutable miss : (int * int64) option; (* waiting request: tag, pc *)
  mutable miss_way : int;
  mutable rotor : int;
  c_hit : Stats.counter;
  c_miss : Stats.counter;
}

let create ?(name = "l1i") ?boundary_lookahead clk ~child_id ~geom ~fetch_width ~stats () =
  let mk () = { tag = -1L; st = Msg.I; data = Bytes.make Cache_geom.line_bytes '\000'; pending = false } in
  let t =
  {
    name;
    geom;
    fetch_width;
    lines = Array.init geom.Cache_geom.sets (fun _ -> Array.init geom.Cache_geom.ways (fun _ -> mk ()));
    req_q = Fifo.cf ~name:(name ^ ".req") clk ~capacity:2 ();
    resp_q = Fifo.cf ~name:(name ^ ".resp") clk ~capacity:2 ();
    (* Crossbar-facing queues: see the dcache note on [boundary_lookahead]. *)
    creq_o = Fifo.cf ~name:(name ^ ".creq") ?lookahead:boundary_lookahead clk ~capacity:2 ();
    cresp_o = Fifo.cf ~name:(name ^ ".cresp") ?lookahead:boundary_lookahead clk ~capacity:4 ();
    preq_i = Fifo.cf ~name:(name ^ ".preq") ?lookahead:boundary_lookahead clk ~capacity:4 ();
    presp_i = Fifo.cf ~name:(name ^ ".presp") ?lookahead:boundary_lookahead clk ~capacity:2 ();
    child_id;
    part = Partition.ambient ();
    miss = None;
    miss_way = 0;
    rotor = 0;
    c_hit = Stats.counter stats (name ^ ".hits");
    c_miss = Stats.counter stats (name ^ ".misses");
  }
  in
  State.field ~name:(name ^ ".arrays")
    (fun () -> (t.lines, t.miss, t.miss_way, t.rotor))
    (fun (lines, miss, miss_way, rotor) ->
      Array.iteri (fun s ways -> Array.blit ways 0 t.lines.(s) 0 (Array.length ways)) lines;
      t.miss <- miss;
      t.miss_way <- miss_way;
      t.rotor <- rotor);
  t

let fld (ctx : Kernel.ctx) get set v = Mut.field ctx ~get ~set v

let lookup t laddr =
  let ways = t.lines.(Cache_geom.index t.geom laddr) in
  let tg = Cache_geom.tag t.geom laddr in
  let rec go i =
    if i >= Array.length ways then None
    else if ways.(i).tag = tg && ways.(i).st <> Msg.I then Some ways.(i)
    else go (i + 1)
  in
  go 0

let words_from t ln pc =
  let off = Cache_geom.offset pc in
  let n = min t.fetch_width ((Cache_geom.line_bytes - off) / 4) in
  Array.init n (fun k -> Int32.to_int (Bytes.get_int32_le ln.data (off + (k * 4))) land 0xFFFFFFFF)

let respond ctx t tag pc ln =
  Fifo.enq ctx t.resp_q (tag, pc, words_from t ln pc)

let step_req ctx t =
  Kernel.guard ctx (t.miss = None) "icache busy";
  let tag, pc = Fifo.first ctx t.req_q in
  let laddr = Cache_geom.line_addr pc in
  (match lookup t laddr with
  | Some ln when not ln.pending ->
    respond ctx t tag pc ln;
    Stats.incr ~ctx t.c_hit
  | Some _ | None ->
    let set_idx = Cache_geom.index t.geom laddr in
    let ways = t.lines.(set_idx) in
    let way =
      let rec inv i = if i >= Array.length ways then None else if ways.(i).st = Msg.I then Some i else inv (i + 1) in
      match inv 0 with
      | Some i -> i
      | None ->
        let i = t.rotor mod Array.length ways in
        fld ctx (fun () -> t.rotor) (fun v -> t.rotor <- v) (t.rotor + 1);
        (* voluntary S eviction *)
        let victim = ways.(i) in
        let vaddr =
          Int64.logor
            (Int64.shift_left victim.tag (Cache_geom.line_bits + t.geom.Cache_geom.set_bits))
            (Int64.of_int (set_idx lsl Cache_geom.line_bits))
        in
        Fifo.enq ctx t.cresp_o { Msg.child = t.child_id; line = vaddr; to_s = Msg.I; data = None };
        fld ctx (fun () -> victim.st) (fun v -> victim.st <- v) Msg.I;
        i
    in
    let ln = ways.(way) in
    fld ctx (fun () -> ln.tag) (fun v -> ln.tag <- v) (Cache_geom.tag t.geom laddr);
    fld ctx (fun () -> ln.pending) (fun v -> ln.pending <- v) true;
    Fifo.enq ctx t.creq_o { Msg.child = t.child_id; line = laddr; want = Msg.S };
    fld ctx (fun () -> t.miss) (fun v -> t.miss <- v) (Some (tag, pc));
    fld ctx (fun () -> t.miss_way) (fun v -> t.miss_way <- v) way;
    Stats.incr ~ctx t.c_miss);
  ignore (Fifo.deq ctx t.req_q)

let step_presp ctx t =
  let (g : Msg.presp) = Fifo.deq ctx t.presp_i in
  match t.miss with
  | Some (tag, pc) when Cache_geom.line_addr pc = g.Msg.line ->
    let ln = t.lines.(Cache_geom.index t.geom g.Msg.line).(t.miss_way) in
    Mut.blit ctx ~src:g.Msg.data ~src_pos:0 ~dst:ln.data ~dst_pos:0 ~len:Cache_geom.line_bytes;
    fld ctx (fun () -> ln.st) (fun v -> ln.st <- v) g.Msg.granted;
    fld ctx (fun () -> ln.pending) (fun v -> ln.pending <- v) false;
    respond ctx t tag pc ln;
    fld ctx (fun () -> t.miss) (fun v -> t.miss <- v) None
  | _ -> failwith (t.name ^ ": grant without miss")

let step_preq ctx t =
  let (d : Msg.preq) = Fifo.first ctx t.preq_i in
  (match lookup t d.Msg.line with
  | Some ln when (not ln.pending) && not (Msg.state_leq ln.st d.Msg.to_s) ->
    Fifo.enq ctx t.cresp_o { Msg.child = t.child_id; line = d.Msg.line; to_s = d.Msg.to_s; data = None };
    fld ctx (fun () -> ln.st) (fun v -> ln.st <- v) d.Msg.to_s
  | Some _ | None ->
    Fifo.enq ctx t.cresp_o { Msg.child = t.child_id; line = d.Msg.line; to_s = Msg.I; data = None });
  ignore (Fifo.deq ctx t.preq_i)

let tick t =
  (* [t.miss] is only ever mutated by this rule's own sub-steps, so while
     parked it cannot change: a set miss can only clear via a presp arrival
     (touches [presp_i]), and new demand traffic touches [req_q]/[preq_i]. *)
  let can_fire () =
    Fifo.peek_size t.presp_i > 0
    || Fifo.peek_size t.preq_i > 0
    || (Fifo.peek_size t.req_q > 0 && t.miss = None)
  in
  let watches = [ Fifo.signal t.presp_i; Fifo.signal t.preq_i; Fifo.signal t.req_q ] in
  (* Declared boundary: the four child-side queues shared with the
     crossbar; everything else is core-private. *)
  let touches =
    [
      Fifo.enq_token t.creq_o;
      Fifo.enq_token t.cresp_o;
      Fifo.deq_token t.preq_i;
      Fifo.deq_token t.presp_i;
    ]
  in
  (* Tracked footprint: the core-side queues plus the four crossbar-side
     queues. Lines, the miss slot and the rotor are raw [Mut] state. *)
  let fp =
    [
      Fifo.fp_first t.req_q;
      Fifo.fp_deq t.req_q;
      Fifo.fp_enq t.resp_q;
      Fifo.fp_enq t.creq_o;
      Fifo.fp_enq t.cresp_o;
      Fifo.fp_first t.preq_i;
      Fifo.fp_deq t.preq_i;
      Fifo.fp_deq t.presp_i;
    ]
  in
  Rule.make ~can_fire ~watches ~touches ~fp ~vacuous:true (t.name ^ ".tick") (fun ctx ->
      let _ = Kernel.attempt ctx (fun ctx -> step_presp ctx t) in
      let _ = Kernel.attempt ctx (fun ctx -> step_preq ctx t) in
      let _ = Kernel.attempt ctx (fun ctx -> step_req ctx t) in
      ())

let rules t = Partition.scoped t.part (fun () -> [ tick t ])
let req ctx t ~tag pc = Fifo.enq ctx t.req_q (tag, pc)
let can_req ctx t = Fifo.can_enq ctx t.req_q
let resp ctx t = Fifo.deq ctx t.resp_q
let can_resp ctx t = Fifo.can_deq ctx t.resp_q
let fp_req t = [ Fifo.fp_can_enq t.req_q; Fifo.fp_enq t.req_q ]
let fp_resp t = [ Fifo.fp_can_deq t.resp_q; Fifo.fp_deq t.resp_q ]
let resp_ready t = Fifo.peek_size t.resp_q > 0
let resp_signal t = Fifo.signal t.resp_q
let creq_out t = t.creq_o
let cresp_out t = t.cresp_o
let preq_in t = t.preq_i
let presp_in t = t.presp_i
