(** The assembled coherent memory system (paper, Fig. 11): per-core L1 I/D
    caches, the cache crossbar, the shared inclusive L2, and DRAM.

    Both TLB page walks (through the L2 walker port) and all cache traffic
    are coherent, as in the paper. *)

type config = {
  l1d_bytes : int;
  l1d_ways : int;
  l1d_mshrs : int;
  l1i_bytes : int;
  l1i_ways : int;
  l2_bytes : int;
  l2_ways : int;
  l2_mshrs : int;
  l2_latency : int;  (** cycles added to every L2 response (hit latency) *)
  l2_banks : int;
      (** line-address-interleaved L2 banks (power of two; 1 = the seed's
          single shared L2). Capacity and MSHRs split evenly across banks,
          each bank gets its own DRAM channel, and when banked each bank is
          its own scheduler partition (so banks free-run under epoch
          execution). *)
  mesi : bool;  (** grant exclusive-clean on unshared reads (MESI) *)
  mem_latency : int;
  mem_inflight : int;
  lookahead_override : int option;
      (** override the epoch lookahead declared on every cross-partition
          boundary FIFO ([None] = the derived bound: crossbar round trip +
          L2 response latency). Exists for the epoch audit's negative
          tests — overstating the bound must be caught, not silently
          trusted. *)
}

(** The paper's RiscyOO-B memory parameters (Fig. 12). *)
val default_config : config

type t

val create :
  Cmd.Clock.t -> Isa.Phys_mem.t -> config -> ncores:int -> fetch_width:int -> stats:Cmd.Stats.t -> t

val dcache : t -> int -> L1_dcache.t
val icache : t -> int -> L1_icache.t

(** Bank 0 — {e the} L2 in an unbanked configuration. *)
val l2 : t -> L2_cache.t

(** All banks, in interleave order; length [cfg.l2_banks]. *)
val l2_banks : t -> L2_cache.t array

(** [bank_of t laddr] — which bank owns a line address (constant 0 when
    unbanked). The walker crossbar routes with this. *)
val bank_of : t -> int64 -> int

(** The epoch lookahead declared on the boundary FIFOs (see config). *)
val lookahead : t -> int

(** Bank 0's DRAM channel. *)
val dram : t -> Dram.t

val drams : t -> Dram.t array

(** All internal rules (caches, crossbar, L2), in a schedule that keeps
    response channels ahead of request channels. *)
val rules : t -> Cmd.Rule.t list
