open Cmd

type t = {
  clk : Clock.t;
  pmem : Isa.Phys_mem.t;
  latency : int;
  pending : (int * int64 * Bytes.t) Fifo.t; (* ready_cycle, line, data *)
  mutable n_reads : int;
  mutable n_writes : int;
}

let create ?(name = "dram") clk pmem ~latency ~max_inflight =
  let t =
    {
      clk;
      pmem;
      latency;
      pending = Fifo.cf ~name:(name ^ ".pending") clk ~capacity:max_inflight ();
      n_reads = 0;
      n_writes = 0;
    }
  in
  State.field ~name
    (fun () -> (t.n_reads, t.n_writes))
    (fun (n_reads, n_writes) ->
      t.n_reads <- n_reads;
      t.n_writes <- n_writes);
  t

let req_read ctx t line =
  let data = Isa.Phys_mem.load_block t.pmem line Cache_geom.line_bytes in
  Fifo.enq ctx t.pending (Clock.now t.clk + t.latency, line, data);
  Mut.field ctx ~get:(fun () -> t.n_reads) ~set:(fun v -> t.n_reads <- v) (t.n_reads + 1)

let req_write ctx t line data =
  (* Applied immediately: the L2 serializes traffic per line, so ordering
     relative to subsequent reads of the same line is already enforced. *)
  let old = Isa.Phys_mem.load_block t.pmem line Cache_geom.line_bytes in
  Kernel.on_abort ctx (fun () -> Isa.Phys_mem.store_block t.pmem line old);
  Isa.Phys_mem.store_block t.pmem line (Bytes.copy data);
  Mut.field ctx ~get:(fun () -> t.n_writes) ~set:(fun v -> t.n_writes <- v) (t.n_writes + 1)

let can_resp ctx t =
  Fifo.can_deq ctx t.pending
  &&
  let ready, _, _ = Fifo.first ctx t.pending in
  ready <= Clock.now t.clk

let resp ctx t =
  Kernel.guard ctx (can_resp ctx t) "dram: no response ready";
  let _, line, data = Fifo.deq ctx t.pending in
  (line, data)

let fp_use t =
  [ Fifo.fp_enq t.pending; Fifo.fp_first t.pending; Fifo.fp_deq t.pending; Fifo.fp_can_deq t.pending ]

let tokens t = [ Fifo.enq_token t.pending; Fifo.deq_token t.pending ]

let busy t = Fifo.peek_size t.pending > 0
let reads t = t.n_reads
let writes t = t.n_writes
