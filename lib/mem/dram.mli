(** The DRAM model: fixed latency, bounded outstanding requests.

    Matches the paper's memory model (Fig. 12): a latency in cycles and a
    maximum number of in-flight requests standing in for bandwidth
    (24 requests ≈ 12.8 GB/s at 2 GHz). Reads complete in order after
    [latency] cycles; writes are acknowledged implicitly and applied at
    request time (the L2 is the only client and never reads a line it has
    outstanding writes for). *)

type t

(** [?name] disambiguates the snapshot field and pending-queue names when a
    machine instantiates several DRAM channels (one per L2 bank). *)
val create : ?name:string -> Cmd.Clock.t -> Isa.Phys_mem.t -> latency:int -> max_inflight:int -> t

(** Read a 64-byte line. Guarded on an in-flight slot being free. *)
val req_read : Cmd.Kernel.ctx -> t -> int64 -> unit

(** Write back a 64-byte line (costs an in-flight slot until accepted). *)
val req_write : Cmd.Kernel.ctx -> t -> int64 -> Bytes.t -> unit

(** Oldest completed read: [(line_addr, data)]. Guarded on one being ready. *)
val resp : Cmd.Kernel.ctx -> t -> int64 * Bytes.t

val can_resp : Cmd.Kernel.ctx -> t -> bool

(** Footprint atoms ([Rule.make ~fp]) covering every tracked access the DRAM
    model can make on behalf of a calling rule — [req_read], [can_resp] and
    [resp] all go through the pending queue; [req_write] touches no tracked
    cell. *)
val fp_use : t -> Cmd.Conflict.atom list

(** Partition tokens for both sides of the pending queue ([Rule.make
    ~touches]): the DRAM channel is private to the L2 bank that owns it. *)
val tokens : t -> Cmd.Partition.token list

(** Untracked: some read is in flight (possibly not yet ready) — part of the
    L2 tick rule's [can_fire]. *)
val busy : t -> bool

(** Total reads and writes accepted (statistics). *)
val reads : t -> int

val writes : t -> int
