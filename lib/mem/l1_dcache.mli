(** Non-blocking L1 data cache (paper, Section V-B).

    Core-side interface, mirroring the paper's methods:
    - [req]: a load (with LQ tag), a store-exclusive request (with SB tag),
      or an atomic read-modify-write (commit-time AMO/LR/SC);
    - [resp_ld]: load value with its LQ tag;
    - [resp_st]: an SB tag whose line is now held exclusively and {e locked};
    - [write_data]: writes the store data for a previously responded tag and
      unlocks the line.

    Parent-side: MSI child over the four message channels of {!Msg}.
    Misses allocate one of [mshrs] miss-status registers; requests to a line
    with an outstanding MSHR merge into it. The [evict_hook] fires whenever a
    line leaves the cache (replacement or invalidation) — the TSO LSQ uses it
    to kill speculative loads (the paper's [cacheEvict]). *)

type t

type req =
  | Ld of { tag : int; addr : int64; bytes : int; unsigned : bool }
  | St of { tag : int; line : int64 }
  | At of { tag : int; addr : int64; bytes : int; f : int64 -> int64 option * int64 }
      (** [f old] returns (value to store if any, result register value) *)
  | Pf of { line : int64 }
      (** store prefetch (paper, Sec. V-B): acquire exclusive permission
          early; best-effort, no response *)

(** [?boundary_lookahead] declares the epoch lookahead ({!Cmd.Fifo.cf}) on
    the four crossbar-facing queues, which straddle the core/uncore
    partition boundary. *)
val create :
  ?name:string ->
  ?boundary_lookahead:int ->
  Cmd.Clock.t ->
  child_id:int ->
  geom:Cache_geom.t ->
  mshrs:int ->
  stats:Cmd.Stats.t ->
  unit ->
  t

(** {2 Core side (all guarded)} *)

val req : Cmd.Kernel.ctx -> t -> req -> unit
val can_req : Cmd.Kernel.ctx -> t -> bool
val resp_ld : Cmd.Kernel.ctx -> t -> int * int64
val can_resp_ld : Cmd.Kernel.ctx -> t -> bool
val resp_st : Cmd.Kernel.ctx -> t -> int
val can_resp_st : Cmd.Kernel.ctx -> t -> bool
val resp_at : Cmd.Kernel.ctx -> t -> int * int64
val can_resp_at : Cmd.Kernel.ctx -> t -> bool

(** {2 Conflict footprints} ([Rule.make ~fp])

    Each list covers the method and its [can_*] probe; [write_data] mutates
    only raw line state and contributes no atoms. *)

val fp_req : t -> Cmd.Conflict.atom list

val fp_resp_ld : t -> Cmd.Conflict.atom list
val fp_resp_st : t -> Cmd.Conflict.atom list
val fp_resp_at : t -> Cmd.Conflict.atom list

(** {2 Fast-path scheduler probes}

    Untracked response availability ([peek_size > 0]) and the matching
    wakeup signals, for the [can_fire] predicates of the core rules that
    dequeue each response queue. *)

val resp_ld_ready : t -> bool
val resp_st_ready : t -> bool
val resp_at_ready : t -> bool
val resp_ld_signal : t -> Cmd.Wakeup.signal
val resp_st_signal : t -> Cmd.Wakeup.signal
val resp_at_signal : t -> Cmd.Wakeup.signal

(** [write_data ctx t ~line ~data ~mask] writes masked bytes (bit [i] of
    [mask] enables byte [i]) into the locked line and unlocks it. *)
val write_data : Cmd.Kernel.ctx -> t -> line:int64 -> data:Bytes.t -> mask:int64 -> unit

(** Register the eviction callback (TSO's [cacheEvict]). *)
val set_evict_hook : t -> (Cmd.Kernel.ctx -> int64 -> unit) -> unit

(** {2 Parent side} *)

val creq_out : t -> Msg.creq Cmd.Fifo.t
val cresp_out : t -> Msg.cresp Cmd.Fifo.t
val preq_in : t -> Msg.preq Cmd.Fifo.t
val presp_in : t -> Msg.presp Cmd.Fifo.t

(** Internal rules (one tick rule); include in the top-level schedule. *)
val rules : t -> Cmd.Rule.t list

(** Test/debug: current MSI state of a line. *)
val peek_state : t -> int64 -> Msg.state
