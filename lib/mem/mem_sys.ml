type config = {
  l1d_bytes : int;
  l1d_ways : int;
  l1d_mshrs : int;
  l1i_bytes : int;
  l1i_ways : int;
  l2_bytes : int;
  l2_ways : int;
  l2_mshrs : int;
  l2_latency : int;
  mesi : bool;
  mem_latency : int;
  mem_inflight : int;
}

let default_config =
  {
    l1d_bytes = 32 * 1024;
    l1d_ways = 8;
    l1d_mshrs = 8;
    l1i_bytes = 32 * 1024;
    l1i_ways = 8;
    l2_bytes = 1024 * 1024;
    l2_ways = 16;
    l2_mshrs = 16;
    l2_latency = 16;
    mesi = false;
    mem_latency = 120;
    mem_inflight = 24;
  }

type t = {
  dcaches : L1_dcache.t array;
  icaches : L1_icache.t array;
  l2c : L2_cache.t;
  dramc : Dram.t;
  xbar_rules : Cmd.Rule.t list;
}

let create clk pmem cfg ~ncores ~fetch_width ~stats =
  let dramc = Dram.create clk pmem ~latency:cfg.mem_latency ~max_inflight:cfg.mem_inflight in
  let nchildren = 2 * ncores in
  let l2c =
    L2_cache.create clk ~nchildren
      ~geom:(Cache_geom.v ~size_bytes:cfg.l2_bytes ~ways:cfg.l2_ways)
      ~mshrs:cfg.l2_mshrs ~latency:cfg.l2_latency ~mesi:cfg.mesi ~dram:dramc ~stats ()
  in
  (* L1s are private to their core, so they are built — queues, signals and
     tick rule alike — inside that core's partition; the crossbar, L2 and
     DRAM stay in the ambient (uncore) partition. The L1↔crossbar queues
     are conflict-free, which is what lets their two sides straddle the
     partition boundary. *)
  let dcaches =
    Array.init ncores (fun i ->
        Cmd.Partition.scoped (i + 1) (fun () ->
            L1_dcache.create ~name:(Printf.sprintf "c%d.l1d" i) clk ~child_id:(2 * i)
              ~geom:(Cache_geom.v ~size_bytes:cfg.l1d_bytes ~ways:cfg.l1d_ways)
              ~mshrs:cfg.l1d_mshrs ~stats ()))
  in
  let icaches =
    Array.init ncores (fun i ->
        Cmd.Partition.scoped (i + 1) (fun () ->
            L1_icache.create ~name:(Printf.sprintf "c%d.l1i" i) clk ~child_id:((2 * i) + 1)
              ~geom:(Cache_geom.v ~size_bytes:cfg.l1i_bytes ~ways:cfg.l1i_ways)
              ~fetch_width ~stats ()))
  in
  let endpoints =
    Array.init nchildren (fun c ->
        if c land 1 = 0 then
          let d = dcaches.(c / 2) in
          {
            Crossbar.creq = L1_dcache.creq_out d;
            cresp = L1_dcache.cresp_out d;
            preq = L1_dcache.preq_in d;
            presp = L1_dcache.presp_in d;
          }
        else
          let i = icaches.(c / 2) in
          {
            Crossbar.creq = L1_icache.creq_out i;
            cresp = L1_icache.cresp_out i;
            preq = L1_icache.preq_in i;
            presp = L1_icache.presp_in i;
          })
  in
  { dcaches; icaches; l2c; dramc; xbar_rules = Crossbar.rules endpoints ~l2:l2c }

let dcache t i = t.dcaches.(i)
let icache t i = t.icaches.(i)
let l2 t = t.l2c
let dram t = t.dramc

let rules t =
  t.xbar_rules
  @ L2_cache.rules t.l2c
  @ Array.to_list (Array.map L1_dcache.rules t.dcaches |> Array.map List.hd)
  @ Array.to_list (Array.map L1_icache.rules t.icaches |> Array.map List.hd)
