type config = {
  l1d_bytes : int;
  l1d_ways : int;
  l1d_mshrs : int;
  l1i_bytes : int;
  l1i_ways : int;
  l2_bytes : int;
  l2_ways : int;
  l2_mshrs : int;
  l2_latency : int;
  l2_banks : int;
  mesi : bool;
  mem_latency : int;
  mem_inflight : int;
  lookahead_override : int option;
}

let default_config =
  {
    l1d_bytes = 32 * 1024;
    l1d_ways = 8;
    l1d_mshrs = 8;
    l1i_bytes = 32 * 1024;
    l1i_ways = 8;
    l2_bytes = 1024 * 1024;
    l2_ways = 16;
    l2_mshrs = 16;
    l2_latency = 16;
    l2_banks = 1;
    mesi = false;
    mem_latency = 120;
    mem_inflight = 24;
    lookahead_override = None;
  }

type t = {
  dcaches : L1_dcache.t array;
  icaches : L1_icache.t array;
  banks : L2_cache.t array;
  drams : Dram.t array;
  bank_of : int64 -> int;
  lookahead : int;
  xbar_rules : Cmd.Rule.t list;
}

(* The minimum cycles between a core-side boundary enqueue and the earliest
   consequence flowing back: one crossbar hop each way around the L2's
   response pipeline. This is the epoch lookahead declared on every
   cross-partition boundary FIFO; [lookahead_override] exists for the
   audit's negative tests (declaring more than the hardware guarantees must
   be caught, see [L2_cache] on [declared_min]). *)
let lookahead_of cfg = Option.value cfg.lookahead_override ~default:(cfg.l2_latency + 2)

let create clk pmem cfg ~ncores ~fetch_width ~stats =
  let nbanks = cfg.l2_banks in
  if nbanks < 1 || nbanks land (nbanks - 1) <> 0 then
    invalid_arg "Mem_sys.create: l2_banks must be a power of two";
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  let bank_bits = log2 nbanks in
  let la = lookahead_of cfg in
  let nchildren = 2 * ncores in
  (* Each bank gets an equal slice of the L2 capacity and MSHRs and its own
     DRAM channel (interleaving multiplies memory-level parallelism, as
     banking is meant to). A single bank reproduces the seed machine
     exactly: uncore partition, "l2"/"dram" names, unbanked address split. *)
  let banks_drams =
    Array.init nbanks (fun b ->
        let build () =
          let name = if nbanks = 1 then "l2" else Printf.sprintf "l2b%d" b in
          let dram_name = if nbanks = 1 then "dram" else Printf.sprintf "dramb%d" b in
          let dram = Dram.create ~name:dram_name clk pmem ~latency:cfg.mem_latency ~max_inflight:cfg.mem_inflight in
          let l2 =
            L2_cache.create ~name ~bank:(b, bank_bits) ~declared_min:(la - 2) ~in_lookahead:la clk
              ~nchildren
              ~geom:(Cache_geom.v ~size_bytes:(cfg.l2_bytes / nbanks) ~ways:cfg.l2_ways)
              ~mshrs:(max 1 (cfg.l2_mshrs / nbanks))
              ~latency:cfg.l2_latency ~mesi:cfg.mesi ~dram ~stats ()
          in
          (l2, dram)
        in
        if nbanks = 1 then build ()
        else Cmd.Partition.scoped (ncores + 1 + b) build)
  in
  let banks = Array.map fst banks_drams in
  let drams = Array.map snd banks_drams in
  let bank_of laddr =
    Int64.to_int (Int64.shift_right_logical laddr Cache_geom.line_bits) land (nbanks - 1)
  in
  (* L1s are private to their core, so they are built — queues, signals and
     tick rule alike — inside that core's partition; the crossbar stays in
     the ambient (uncore) partition, and each L2 bank (with its DRAM
     channel) lives in its own partition when banked. The L1↔crossbar and
     crossbar↔bank queues are conflict-free, which is what lets their two
     sides straddle a partition boundary. *)
  let dcaches =
    Array.init ncores (fun i ->
        Cmd.Partition.scoped (i + 1) (fun () ->
            L1_dcache.create ~name:(Printf.sprintf "c%d.l1d" i) ~boundary_lookahead:la clk
              ~child_id:(2 * i)
              ~geom:(Cache_geom.v ~size_bytes:cfg.l1d_bytes ~ways:cfg.l1d_ways)
              ~mshrs:cfg.l1d_mshrs ~stats ()))
  in
  let icaches =
    Array.init ncores (fun i ->
        Cmd.Partition.scoped (i + 1) (fun () ->
            L1_icache.create ~name:(Printf.sprintf "c%d.l1i" i) ~boundary_lookahead:la clk
              ~child_id:((2 * i) + 1)
              ~geom:(Cache_geom.v ~size_bytes:cfg.l1i_bytes ~ways:cfg.l1i_ways)
              ~fetch_width ~stats ()))
  in
  let endpoints =
    Array.init nchildren (fun c ->
        if c land 1 = 0 then
          let d = dcaches.(c / 2) in
          {
            Crossbar.creq = L1_dcache.creq_out d;
            cresp = L1_dcache.cresp_out d;
            preq = L1_dcache.preq_in d;
            presp = L1_dcache.presp_in d;
          }
        else
          let i = icaches.(c / 2) in
          {
            Crossbar.creq = L1_icache.creq_out i;
            cresp = L1_icache.cresp_out i;
            preq = L1_icache.preq_in i;
            presp = L1_icache.presp_in i;
          })
  in
  {
    dcaches;
    icaches;
    banks;
    drams;
    bank_of;
    lookahead = la;
    xbar_rules = Crossbar.rules endpoints ~banks ~bank_of;
  }

let dcache t i = t.dcaches.(i)
let icache t i = t.icaches.(i)
let l2 t = t.banks.(0)
let l2_banks t = t.banks
let dram t = t.drams.(0)
let drams t = t.drams
let bank_of t = t.bank_of
let lookahead t = t.lookahead

let rules t =
  t.xbar_rules
  @ List.concat_map L2_cache.rules (Array.to_list t.banks)
  @ Array.to_list (Array.map L1_dcache.rules t.dcaches |> Array.map List.hd)
  @ Array.to_list (Array.map L1_icache.rules t.icaches |> Array.map List.hd)
