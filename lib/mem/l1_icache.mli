(** L1 instruction cache: a blocking, coherent read-only (I/S) child.

    The front-end sends a fetch request tagged with an opaque id (the epoch,
    so wrong-path responses can be discarded) and receives up to
    [fetch_width] instruction words starting at the requested pc, truncated
    at the cache-line boundary. One miss outstanding at a time — instruction
    misses are rare enough that the paper's core keeps this simple. *)

type t

(** [?boundary_lookahead] declares the epoch lookahead ({!Cmd.Fifo.cf}) on
    the four crossbar-facing queues, which straddle the core/uncore
    partition boundary. *)
val create :
  ?name:string ->
  ?boundary_lookahead:int ->
  Cmd.Clock.t ->
  child_id:int ->
  geom:Cache_geom.t ->
  fetch_width:int ->
  stats:Cmd.Stats.t ->
  unit ->
  t

(** [req ctx t ~tag pc] — pc must be 4-byte aligned. *)
val req : Cmd.Kernel.ctx -> t -> tag:int -> int64 -> unit

val can_req : Cmd.Kernel.ctx -> t -> bool

(** [(tag, pc, words)] — [words] holds 1..fetch_width instruction words. *)
val resp : Cmd.Kernel.ctx -> t -> int * int64 * int array

val can_resp : Cmd.Kernel.ctx -> t -> bool

(** Footprint atoms ([Rule.make ~fp]): {!fp_req} covers [can_req]/[req],
    {!fp_resp} covers [can_resp]/[resp]. *)
val fp_req : t -> Cmd.Conflict.atom list

val fp_resp : t -> Cmd.Conflict.atom list

(** Untracked response availability + its wakeup signal, for the fetch
    rule's [can_fire]. *)
val resp_ready : t -> bool

val resp_signal : t -> Cmd.Wakeup.signal

val creq_out : t -> Msg.creq Cmd.Fifo.t
val cresp_out : t -> Msg.cresp Cmd.Fifo.t
val preq_in : t -> Msg.preq Cmd.Fifo.t
val presp_in : t -> Msg.presp Cmd.Fifo.t
val rules : t -> Cmd.Rule.t list
