(** The cache crossbar (paper, Fig. 11): connection rules between N L1
    children and the shared (possibly banked) L2.

    Child→parent channels are merged (round-robin over children, one message
    per child per cycle) and routed to the bank owning the message's line
    ([bank_of] — constant for an unbanked L2); parent→child channels are
    demultiplexed on the destination id. Response channels get their own
    rules scheduled before request channels, preserving the "responses are
    never slower than requests" invariant the protocol's ordering argument
    needs. Per-(child, line) message order is preserved: a line maps to
    exactly one bank. *)

type endpoint = {
  creq : Msg.creq Cmd.Fifo.t;
  cresp : Msg.cresp Cmd.Fifo.t;
  preq : Msg.preq Cmd.Fifo.t;
  presp : Msg.presp Cmd.Fifo.t;
}

(** [rules children ~banks ~bank_of] — the child endpoints must be indexed
    by their [child] id as used in the messages; [bank_of] takes a line
    address. *)
val rules :
  endpoint array -> banks:L2_cache.t array -> bank_of:(int64 -> int) -> Cmd.Rule.t list
