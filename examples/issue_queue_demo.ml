(* The paper's Section IV example: the instruction-issue-queue / register
   ready-bit concurrency problem, and how the conflict matrix decides both
   correctness and performance.

   Three rules share the IQ and the ready-bit file RDYB:
     doRegWrite: wakes up the IQ and sets the RDYB presence bit
     doIssue:    pulls a ready instruction out of the IQ
     doRename:   reads RDYB, enters an instruction into the IQ

   With rules as atomic transactions, BOTH conflict-matrix choices are
   correct; they differ only in how many cycles a dependency chain takes
   (Sec. IV-D):
     issue < wakeup  (issue reads the IQ ready bits at EHR port 0, i.e.
                     before the wakeup write): a woken instruction issues
                     the NEXT cycle;
     wakeup < issue  (issue reads at port 1, after the wakeup write):
                     wakeup and issue of the dependent happen in the SAME
                     cycle — one cycle saved per dependency link.

   Run: dune exec examples/issue_queue_demo.exe *)

open Cmd

type instr = { dst : int; src1 : int; src2 : int }

let n_regs = 8

let run order_name ~issue_port =
  let clk = Clock.create () in
  (* RDYB presence bits and a 4-entry IQ as EHRs: the wakeup rule writes
     port 0; the issue rule reads port [issue_port]; rename uses the
     highest ports so it is last either way *)
  let rdyb = Array.init n_regs (fun _ -> Ehr.create true) in
  let iq = Array.init 4 (fun _ -> Ehr.create None) in
  let in_flight = Ehr.create None in
  let program = ref (List.init 6 (fun i -> { dst = i + 1; src1 = i; src2 = 0 })) in
  let completed = ref 0 in
  let do_regwrite =
    Rule.make "doRegWrite" (fun ctx ->
        match Ehr.read ctx in_flight 0 with
        | None -> raise (Kernel.Guard_fail "nothing completing")
        | Some i ->
          Ehr.write ctx in_flight 0 None;
          (* set the presence bit AND wake up matching IQ sources in one
             atomic action — the paper's point: separating these two
             updates is exactly what loses wakeups *)
          Ehr.write ctx rdyb.(i.dst) 0 true;
          Array.iter
            (fun s ->
              match Ehr.read ctx s 0 with
              | Some (w, r1, r2) ->
                if (w.src1 = i.dst && not r1) || (w.src2 = i.dst && not r2) then
                  Ehr.write ctx s 0 (Some (w, r1 || w.src1 = i.dst, r2 || w.src2 = i.dst))
              | None -> ())
            iq;
          incr completed)
  in
  let do_issue =
    Rule.make "doIssue" (fun ctx ->
        Kernel.guard ctx (Ehr.read ctx in_flight 1 = None) "pipe busy";
        let ready =
          Array.to_list iq
          |> List.find_opt (fun s ->
                 match Ehr.read ctx s issue_port with Some (_, true, true) -> true | _ -> false)
        in
        match ready with
        | Some s ->
          (match Ehr.read ctx s issue_port with
          | Some (i, _, _) ->
            Ehr.write ctx s issue_port None;
            Ehr.write ctx in_flight 1 (Some i)
          | None -> assert false)
        | None -> raise (Kernel.Guard_fail "nothing ready"))
  in
  let do_rename =
    Rule.make "doRename" (fun ctx ->
        match !program with
        | [] -> raise (Kernel.Guard_fail "renamed everything")
        | i :: tl ->
          let slot = Array.to_list iq |> List.find_opt (fun s -> Ehr.read ctx s 2 = None) in
          (match slot with
          | None -> raise (Kernel.Guard_fail "IQ full")
          | Some s ->
            (* reading RDYB at port 1 sees this cycle's wakeups: no lost
               wakeup between the read and the IQ insert — atomicity *)
            let rdy1 = Ehr.read ctx rdyb.(i.src1) 1 and rdy2 = Ehr.read ctx rdyb.(i.src2) 1 in
            Ehr.write ctx rdyb.(i.dst) 1 false;
            Ehr.write ctx s 2 (Some (i, rdy1, rdy2));
            Kernel.on_abort ctx (fun () -> program := i :: tl);
            program := tl))
  in
  let sim = Sim.create clk [ do_regwrite; do_issue; do_rename ] in
  (match Sim.run_until sim ~max_cycles:200 (fun () -> !completed = 6) with
  | `Done n -> Printf.printf "%-36s chain of 6 completed in %2d cycles\n" order_name n
  | `Timeout _ -> Printf.printf "%-36s TIMEOUT\n" order_name)

let () =
  print_endline "Section IV: the IQ/RDYB atomicity problem, solved by conflict matrices:";
  run "issue < wakeup (port-0 reads)" ~issue_port:0;
  run "wakeup < issue (port-1 reads)" ~issue_port:1;
  print_endline
    "(both conflict matrices are CORRECT — the atomicity of rules keeps the\n\
    \ reasoning local — but wakeup-before-issue saves one cycle per dependency\n\
    \ link: the Sec. IV-D exploration)"
