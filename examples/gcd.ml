(* The paper's Section III example: a latency-insensitive GCD module with
   guarded [start]/[get_result] methods, then the 2x-throughput refinement
   (mkTwoGCD) that changes the implementation without changing the interface
   — the composability claim in miniature.

   Run: dune exec examples/gcd.exe *)

open Cmd

(* The GCD interface: two guarded methods (Fig. 1). *)
type gcd = {
  start : Kernel.ctx -> int64 -> int64 -> unit;
  get_result : Kernel.ctx -> int64;
}

(* mkGCD (Fig. 2): registers x, y, busy; an internal doGCD rule; start is
   guarded on !busy, getResult on busy && x = 0. *)
let mk_gcd name =
  let x = Reg.create ~name:(name ^ ".x") 0L in
  let y = Reg.create ~name:(name ^ ".y") 0L in
  let busy = Reg.create ~name:(name ^ ".busy") false in
  let do_gcd =
    Rule.make (name ^ ".doGCD") (fun ctx ->
        let xv = Reg.read ctx x and yv = Reg.read ctx y in
        Kernel.guard ctx (xv <> 0L) "x = 0";
        if Int64.unsigned_compare xv yv >= 0 then Reg.write ctx x (Int64.sub xv yv)
        else begin
          (* swap *)
          Reg.write ctx x yv;
          Reg.write ctx y xv
        end)
  in
  let start ctx a b =
    Kernel.guard ctx (not (Reg.read ctx busy)) (name ^ " busy");
    Reg.write ctx x a;
    Reg.write ctx y (if b = 0L then a else b);
    Reg.write ctx busy true
  in
  let get_result ctx =
    Kernel.guard ctx (Reg.read ctx busy && Reg.read ctx x = 0L) (name ^ " not done");
    Reg.write ctx busy false;
    Reg.read ctx y
  in
  ({ start; get_result }, [ do_gcd ])

(* mkTwoGCD (Fig. 4): same interface, two internal mkGCD modules driven
   round-robin — the refinement is invisible to the client rules. *)
let mk_two_gcd name =
  let g1, r1 = mk_gcd (name ^ ".g1") in
  let g2, r2 = mk_gcd (name ^ ".g2") in
  let in_turn = Reg.create ~name:(name ^ ".inTurn") true in
  let out_turn = Reg.create ~name:(name ^ ".outTurn") true in
  let start ctx a b =
    if Reg.read ctx in_turn then begin
      g1.start ctx a b;
      Reg.write ctx in_turn false
    end
    else begin
      g2.start ctx a b;
      Reg.write ctx in_turn true
    end
  in
  let get_result ctx =
    if Reg.read ctx out_turn then begin
      let v = g1.get_result ctx in
      Reg.write ctx out_turn false;
      v
    end
    else begin
      let v = g2.get_result ctx in
      Reg.write ctx out_turn true;
      v
    end
  in
  ({ start; get_result }, r1 @ r2)

(* Stream [inputs] through a GCD implementation and report the cycle count;
   the client rules never change between implementations. *)
let throughput name (gcd, internal_rules) inputs =
  let clk = Clock.create () in
  let remaining = ref inputs in
  let results = ref [] in
  let feeder =
    Rule.make "feeder" (fun ctx ->
        match !remaining with
        | [] -> raise (Kernel.Guard_fail "done")
        | (a, b) :: tl ->
          gcd.start ctx a b;
          Kernel.on_abort ctx (fun () -> remaining := (a, b) :: tl);
          remaining := tl)
  in
  let drainer =
    Rule.make "drainer" (fun ctx ->
        let v = gcd.get_result ctx in
        results := v :: !results)
  in
  let sim = Sim.create clk ([ drainer; feeder ] @ internal_rules) in
  (match
     Sim.run_until sim ~max_cycles:100_000 (fun () ->
         List.length !results = List.length inputs)
   with
  | `Done n -> Printf.printf "%-10s: %d results in %4d cycles\n" name (List.length !results) n
  | `Timeout _ -> Printf.printf "%-10s: timeout!\n" name);
  List.rev !results

let () =
  let inputs = List.init 20 (fun i -> (Int64.of_int ((i + 3) * 1071), Int64.of_int ((i + 1) * 462))) in
  print_endline "Streaming 20 GCD computations through both implementations:";
  let r1 = throughput "mkGCD" (mk_gcd "gcd") inputs in
  let r2 = throughput "mkTwoGCD" (mk_two_gcd "two") inputs in
  assert (r1 = r2);
  let expected = List.map (fun (a, b) -> (a, b, List.assoc (a, b) (List.combine inputs r1))) inputs in
  ignore expected;
  Printf.printf "results agree; first few: ";
  List.iteri (fun i v -> if i < 5 then Printf.printf "%Ld " v) r1;
  print_newline ();
  print_endline "(same interface, same client rules — double the throughput: the CMD refinement story)"
